#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <unordered_set>

#include "tft/http/content.hpp"
#include "tft/middlebox/http_modifiers.hpp"
#include "tft/middlebox/monitor.hpp"
#include "tft/middlebox/tls_interceptor.hpp"
#include "tft/smtp/interceptor.hpp"
#include "tft/util/hash.hpp"
#include "tft/util/stream_rng.hpp"
#include "tft/util/strings.hpp"
#include "tft/world/world.hpp"

namespace tft::world {

namespace {

using net::Asn;
using net::CountryCode;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::OrgId;
using net::OrgKind;

/// The hijack landing page an ad server serves. The five shared-vendor ISPs
/// get byte-identical JavaScript except for the landing URL constant
/// (§4.3.1's common-hardware observation).
std::string hijack_page(std::string_view landing_host, bool shared_vendor_js) {
  std::string url = "http://" + std::string(landing_host) + "/search";
  if (shared_vendor_js) {
    return "<html><head><title>Search Assistance</title>\n"
           "<script type=\"text/javascript\">\n"
           "var dnsAssistTarget=\"" + url + "\";\n"
           "function dnsAssistRedirect(){\n"
           "  var q=encodeURIComponent(window.location.hostname);\n"
           "  window.location.replace(dnsAssistTarget+\"?q=\"+q+\"&cat=dnsr\");\n"
           "}\n"
           "window.onload=dnsAssistRedirect;\n"
           "</script></head>\n"
           "<body><p>The address you entered could not be found. "
           "Redirecting to <a href=\"" + url + "\">search results</a>.</p>"
           "</body></html>\n";
  }
  return "<html><head><title>Address not found</title></head><body>\n"
         "<h1>We could not find that site</h1>\n"
         "<p>Here are some sponsored results instead:</p>\n"
         "<ul><li><a href=\"" + url + "?src=nxd\">" + std::string(landing_host) +
         "</a></li></ul>\n"
         "<img src=\"http://" + std::string(landing_host) + "/pixel.gif\">\n"
         "</body></html>\n";
}

/// Per-node build record; agents are constructed only after every
/// cross-cutting assignment phase has run.
struct NodeBuild {
  std::string zid;
  Ipv4Address address;
  Asn asn = 0;
  CountryCode country;
  std::size_t isp = 0;
  Ipv4Address resolver;
  bool uses_google = false;
  middlebox::DnsInterceptorList dns_interceptors;
  middlebox::HttpInterceptorList http_interceptors;
  middlebox::TlsInterceptorList tls_interceptors;
  smtp::SmtpInterceptorList smtp_interceptors;
  NodeTruth truth;
};

struct IspState {
  std::string name;
  CountryCode country;
  OrgId org = 0;
  std::vector<Asn> asns;
  std::vector<Ipv4Prefix> prefixes;       // parallel to asns
  std::vector<std::uint32_t> next_host;   // parallel to asns
  std::vector<Ipv4Address> resolver_ips;  // this ISP's resolver service IPs
  std::vector<std::size_t> node_indices;  // into the node table
};

class WorldBuilder {
 public:
  WorldBuilder(const WorldSpec& spec, double scale, std::uint64_t seed)
      : spec_(spec), scale_(scale), seed_(seed), world_(std::make_unique<World>()) {}

  std::unique_ptr<World> build();

 private:
  int scaled(int n) const {
    if (n <= 0) return 0;
    return std::max(1, static_cast<int>(std::llround(n * scale_)));
  }

  // --- address space -------------------------------------------------------
  Ipv4Prefix allocate_prefix();
  Ipv4Address next_address(std::size_t isp, std::size_t as_slot);

  // --- construction phases --------------------------------------------------
  void build_measurement_infrastructure();
  void build_google_dns();
  void build_public_resolvers();
  void build_isps_and_nodes();
  void assign_public_hijack_users();
  void assign_path_and_host_dns_hijackers();
  void assign_http_modifiers();
  void build_https_sites();
  void assign_cert_replacers();
  void assign_monitors();
  void assign_smtp_interceptors();
  void finalize();
  void record_world_gauges();

  // --- helpers ---------------------------------------------------------------
  std::size_t create_isp(std::string name, CountryCode country, OrgKind kind,
                         std::vector<Asn> asns);
  std::shared_ptr<dns::RecursiveResolver> create_resolver(
      Ipv4Address service, std::optional<dns::NxdomainHijackPolicy> hijack);
  Ipv4Address create_ad_server(std::string_view landing_host, Ipv4Address address,
                               bool shared_vendor_js);
  void create_nodes(std::size_t isp, int count, bool force_isp_resolver,
                    double google_fraction, double public_fraction,
                    DnsHijackSource hijack_source, std::string hijack_operator);
  /// Pick up to `count` node indices satisfying `predicate`, spread over at
  /// least `as_spread` ASes and `country_spread` countries where possible.
  /// `purpose` keys the shuffle stream: every assignment phase draws from
  /// its own stream, so adding or reordering phases never reshuffles the
  /// others' picks.
  std::vector<std::size_t> pick_spread(std::string_view purpose, int count,
                                       int as_spread, int country_spread,
                                       const std::function<bool(const NodeBuild&)>& predicate);
  std::size_t find_isp(std::string_view name, const CountryCode& country) const;

  /// Keyed stream for a per-node decision: zID in the entity slot, the
  /// decision kind in the purpose slot. Node-order independent.
  util::StreamRng node_stream(const NodeBuild& node, std::string_view purpose) const {
    return util::StreamRng(seed_, util::fnv1a64(node.zid), purpose);
  }

  const WorldSpec& spec_;
  double scale_;
  /// Base of every keyed draw stream the builder (and, via finalize, the
  /// proxy overlay and exit nodes) uses. No shared sequential engine: all
  /// build randomness is keyed by (seed, entity, purpose).
  std::uint64_t seed_;
  std::unique_ptr<World> world_;

  std::vector<IspState> isps_;
  std::vector<NodeBuild> nodes_;
  std::vector<Ipv4Address> clean_public_resolver_ips_;
  std::map<std::string, std::vector<Ipv4Address>> public_hijack_services_;
  Ipv4Address opendns_service_{208, 67, 222, 222};
  std::uint32_t next_prefix_block_ = 11 << 8;  // /16 blocks, starting 11.0.0.0
  Asn next_synthetic_asn_ = 60000;
  tls::CertificateAuthority* site_ca_ = nullptr;  // set in build_https_sites
  std::vector<tls::CertificateAuthority> cas_;
};

Ipv4Prefix WorldBuilder::allocate_prefix() {
  static const std::unordered_set<std::uint32_t> kReservedFirstOctets = {
      0, 8, 10, 74, 127, 172, 173, 192, 198, 199, 203, 208, 209, 224, 255};
  for (;;) {
    const std::uint32_t block = next_prefix_block_++;
    if (kReservedFirstOctets.contains(block >> 8)) continue;
    return *Ipv4Prefix::make(Ipv4Address(block << 16), 16);
  }
}

std::size_t WorldBuilder::create_isp(std::string name, CountryCode country,
                                     OrgKind kind, std::vector<Asn> asns) {
  IspState isp;
  isp.name = name;
  isp.country = country;
  isp.org = world_->topology.add_organization(std::move(name), country, kind);
  if (asns.empty()) asns.push_back(next_synthetic_asn_++);
  for (const Asn asn : asns) {
    world_->topology.add_as(asn, isp.org);
    const Ipv4Prefix prefix = allocate_prefix();
    world_->topology.announce(prefix, asn);
    isp.asns.push_back(asn);
    isp.prefixes.push_back(prefix);
    isp.next_host.push_back(1000);
  }
  isps_.push_back(std::move(isp));
  return isps_.size() - 1;
}

Ipv4Address WorldBuilder::next_address(std::size_t isp, std::size_t as_slot) {
  IspState& state = isps_[isp];
  const Ipv4Address address = *state.prefixes[as_slot].host(state.next_host[as_slot]);
  ++state.next_host[as_slot];
  return address;
}

std::shared_ptr<dns::RecursiveResolver> WorldBuilder::create_resolver(
    Ipv4Address service, std::optional<dns::NxdomainHijackPolicy> hijack) {
  auto resolver = std::make_shared<dns::RecursiveResolver>(
      service, service, &world_->authorities, &world_->clock);
  resolver->set_metrics(&world_->metrics);
  resolver->set_recorder(&world_->recorder);
  if (hijack) resolver->set_nxdomain_hijack(*hijack);
  world_->resolvers.add_resolver(resolver);
  return resolver;
}

Ipv4Address WorldBuilder::create_ad_server(std::string_view landing_host,
                                           Ipv4Address address,
                                           bool shared_vendor_js) {
  auto server = std::make_shared<http::OriginServer>(
      "ad-server:" + std::string(landing_host));
  const std::string page = hijack_page(landing_host, shared_vendor_js);
  server->set_default_handler(
      [page](const http::Request&) { return http::Response::make(200, "OK", page); });
  world_->web.add(address, server);
  return address;
}

void WorldBuilder::build_measurement_infrastructure() {
  world_->measurement_zone_origin = *dns::DnsName::parse("tft-study.net");
  world_->measurement_zone =
      std::make_shared<dns::AuthoritativeServer>(world_->measurement_zone_origin);
  world_->measurement_web_address = Ipv4Address(198, 51, 100, 10);
  world_->measurement_zone->add_wildcard_a(
      *dns::DnsName::parse("probe.tft-study.net"), world_->measurement_web_address, 60);
  world_->measurement_zone->add_a(*dns::DnsName::parse("web.tft-study.net"),
                                  world_->measurement_web_address);
  world_->authorities.register_zone(world_->measurement_zone);

  world_->measurement_web = std::make_shared<http::OriginServer>("tft-measurement-web");
  // Probe landing page (DNS + monitoring experiments fetch "/").
  std::string probe_page =
      "<html><head><title>tft-probe-content</title></head><body>"
      "<h1>tft-probe-content</h1><p>reference landing page</p>";
  probe_page += "<!-- " + std::string(1600, 'P') + " -->";
  probe_page += "</body></html>";
  world_->measurement_web->set_default_handler([probe_page](const http::Request&) {
    return http::Response::make(200, "OK", probe_page);
  });
  // The four reference objects of §5.1, under any probe host.
  world_->probe_html_bytes = spec_.probe_html_bytes;
  world_->measurement_web->add_path_for_any_host(
      "/page.html",
      http::Response::make(200, "OK", http::reference_html(spec_.probe_html_bytes),
                           "text/html"));
  world_->measurement_web->add_path_for_any_host(
      "/image.simg",
      http::Response::make(200, "OK", http::reference_image(), "image/simg"));
  world_->measurement_web->add_path_for_any_host(
      "/library.js", http::Response::make(200, "OK", http::reference_javascript(),
                                          "application/javascript"));
  world_->measurement_web->add_path_for_any_host(
      "/style.css", http::Response::make(200, "OK", http::reference_css(), "text/css"));
  world_->web.add(world_->measurement_web_address, world_->measurement_web);

  // The SMTP extension's measurement mail server (mail.tft-study.net).
  world_->measurement_mail_address = Ipv4Address(198, 51, 100, 25);
  world_->measurement_mail = std::make_shared<smtp::SmtpServer>(
      smtp::SmtpServer::Config{"mail.tft-study.net", "TFT-SMTPD 1.0", true, true});
  world_->smtp.add(world_->measurement_mail_address, world_->measurement_mail);
  world_->measurement_zone->add_a(*dns::DnsName::parse("mail.tft-study.net"),
                                  world_->measurement_mail_address);
}

void WorldBuilder::build_google_dns() {
  const OrgId google =
      world_->topology.add_organization("Google", "US", OrgKind::kPublicDnsOperator);
  world_->topology.add_as(15169, google);
  world_->topology.announce(*Ipv4Prefix::parse("8.8.8.0/24"), 15169);
  // Anycast sites answer from several distinct egress netblocks, as in the
  // real service; the paper only ever observed its super proxy's site
  // (74.125.0.0/16).
  for (const char* block :
       {"74.125.0.0/16", "172.217.0.0/16", "173.194.0.0/16", "209.85.128.0/17"}) {
    const auto prefix = *Ipv4Prefix::parse(block);
    world_->topology.announce(prefix, 15169);
    world_->google_netblocks.push_back(prefix);
  }

  world_->google_dns =
      std::make_shared<dns::AnycastResolverGroup>(Ipv4Address(8, 8, 8, 8), "google");
  const int instances = std::max(2, spec_.google_anycast_instances);
  for (int i = 0; i < instances; ++i) {
    const auto& block =
        world_->google_netblocks[static_cast<std::size_t>(i) %
                                 world_->google_netblocks.size()];
    auto instance = std::make_shared<dns::RecursiveResolver>(
        Ipv4Address(8, 8, 8, 8),
        *block.host(256u * (1 + static_cast<std::uint32_t>(i) /
                                    world_->google_netblocks.size()) +
                    1),
        &world_->authorities, &world_->clock);
    instance->set_metrics(&world_->metrics);
    instance->set_recorder(&world_->recorder);
    world_->google_dns->add_instance(std::move(instance));
  }
  world_->resolvers.add_anycast(world_->google_dns);

  // What the paper's empirical step would find: the /16 containing the
  // super proxy's instance egress. The super proxy address is fixed
  // (proxy::SuperProxy::Config default), so resolve it here.
  const net::Ipv4Address super_proxy_egress =
      world_->google_dns->instance_for(proxy::SuperProxy::Config{}.address)
          .egress_address();
  world_->google_egress_block = *Ipv4Prefix::make(super_proxy_egress, 16);
}

void WorldBuilder::build_public_resolvers() {
  // Ad-tech hosting for landing pages not owned by an ISP.
  const std::size_t adtech =
      create_isp("TFT AdTech Hosting", "US", OrgKind::kHosting, {});
  std::uint32_t adtech_host = 80;
  const auto adtech_address = [&] {
    return *isps_[adtech].prefixes[0].host(adtech_host++);
  };

  // Hijacking public resolver services (§4.3.2).
  for (const auto& service : spec_.public_resolver_hijackers) {
    const std::size_t isp = create_isp(service.operator_name, "US",
                                       OrgKind::kPublicDnsOperator, {});
    const Ipv4Address landing =
        create_ad_server(service.landing_host, adtech_address(), false);
    // Server counts scale with the population so each server keeps enough
    // users to clear the analysis thresholds.
    const int servers = std::max(1, scaled(service.servers));
    for (int i = 0; i < servers; ++i) {
      const Ipv4Address address = *isps_[isp].prefixes[0].host(53 + i);
      create_resolver(address, dns::NxdomainHijackPolicy{landing, 60, 1.0});
      // Hijacking public resolvers are assigned to nodes later, explicitly,
      // so keep them out of the clean pool.
      public_hijack_services_[service.operator_name].push_back(address);
    }
  }

  // OpenDNS: a clean resolver DNS-wise (its cert interception is separate).
  const std::size_t opendns =
      create_isp("OpenDNS", "US", OrgKind::kPublicDnsOperator, {});
  (void)opendns;
  create_resolver(opendns_service_, std::nullopt);

  // The clean public-resolver population (paper: 1,110 public servers seen,
  // only 21 hijacking).
  const int operators = 12;
  std::vector<std::size_t> public_orgs;
  for (int i = 0; i < operators; ++i) {
    public_orgs.push_back(create_isp("Public DNS Operator " + std::to_string(i + 1),
                                     "US", OrgKind::kPublicDnsOperator, {}));
  }
  const int clean_count = std::max(4, scaled(spec_.clean_public_resolvers));
  for (int i = 0; i < clean_count; ++i) {
    const std::size_t isp = public_orgs[static_cast<std::size_t>(i) % public_orgs.size()];
    const Ipv4Address address =
        *isps_[isp].prefixes[0].host(53 + static_cast<std::uint32_t>(i / operators) * 7);
    create_resolver(address, std::nullopt);
    clean_public_resolver_ips_.push_back(address);
  }
}

void WorldBuilder::create_nodes(std::size_t isp, int count, bool force_isp_resolver,
                                double google_fraction, double public_fraction,
                                DnsHijackSource hijack_source,
                                std::string hijack_operator) {
  IspState& state = isps_[isp];
  for (int i = 0; i < count; ++i) {
    NodeBuild node;
    const std::size_t as_slot = static_cast<std::size_t>(i) % state.asns.size();
    node.asn = state.asns[as_slot];
    node.address = next_address(isp, as_slot);
    node.country = state.country;
    node.isp = isp;
    node.zid = util::stable_id("node|" + state.name + "|" + state.country + "|" +
                               std::to_string(i));

    if (force_isp_resolver || state.resolver_ips.empty()) {
      if (!state.resolver_ips.empty()) {
        node.resolver = state.resolver_ips[static_cast<std::size_t>(i) %
                                           state.resolver_ips.size()];
      } else {
        node.resolver = Ipv4Address(8, 8, 8, 8);
        node.uses_google = true;
      }
    } else {
      util::StreamRng stream = node_stream(node, "resolver");
      const double roll = stream.uniform_double();
      if (roll < google_fraction) {
        node.resolver = Ipv4Address(8, 8, 8, 8);
        node.uses_google = true;
      } else if (roll < google_fraction + public_fraction &&
                 !clean_public_resolver_ips_.empty()) {
        node.resolver =
            clean_public_resolver_ips_[stream.index(clean_public_resolver_ips_.size())];
      } else {
        node.resolver = state.resolver_ips[static_cast<std::size_t>(i) %
                                           state.resolver_ips.size()];
      }
    }

    if (hijack_source != DnsHijackSource::kNone && !node.uses_google) {
      node.truth.dns_hijack = hijack_source;
      node.truth.dns_hijack_operator = hijack_operator;
    }

    state.node_indices.push_back(nodes_.size());
    nodes_.push_back(std::move(node));
  }
}

void WorldBuilder::build_isps_and_nodes() {
  // Known real-world AS numbers for featured networks.
  static const std::map<std::string, std::vector<Asn>> kKnownAsns = {
      {"Deutsche Telekom AG", {3320}},
      {"Talk Talk", {43234, 13285, 9105, 43235, 13286}},
      {"Internet Rimon ISP", {42925}},
  };

  std::map<std::string, int> used_by_country;  // paper-scale node counts

  const auto known_asns = [&](const std::string& name) {
    const auto it = kKnownAsns.find(name);
    return it == kKnownAsns.end() ? std::vector<Asn>{} : it->second;
  };

  // 1. Table 4 ISPs: hijacking resolvers.
  for (const auto& entry : spec_.isp_resolver_hijackers) {
    std::vector<Asn> asns = known_asns(entry.isp);
    if (asns.empty() && entry.nodes > 1000) asns = {next_synthetic_asn_++, next_synthetic_asn_++};
    const std::size_t isp =
        create_isp(entry.isp, entry.country, OrgKind::kBroadbandIsp, asns);
    const Ipv4Address landing = create_ad_server(
        entry.landing_host, *isps_[isp].prefixes[0].host(80), entry.shared_vendor_js);
    const int servers = std::max(1, scaled(entry.dns_servers));
    for (int i = 0; i < servers; ++i) {
      const Ipv4Address address =
          *isps_[isp].prefixes[static_cast<std::size_t>(i) % isps_[isp].prefixes.size()]
               .host(53 + static_cast<std::uint32_t>(i) * 16);
      create_resolver(address, dns::NxdomainHijackPolicy{landing, 60, 1.0});
      isps_[isp].resolver_ips.push_back(address);
    }
    create_nodes(isp, scaled(entry.nodes), /*force_isp_resolver=*/true, 0, 0,
                 DnsHijackSource::kIspResolver, entry.isp);
    used_by_country[entry.country] += entry.nodes;
  }

  // 2. Named ISPs (Tiscali, Uzone, ...): clean resolvers.
  for (const auto& entry : spec_.named_isps) {
    std::vector<Asn> asns;
    for (int i = 0; i < entry.as_count; ++i) asns.push_back(next_synthetic_asn_++);
    const std::size_t isp = create_isp(entry.name, entry.country, entry.kind, asns);
    const Ipv4Address address = *isps_[isp].prefixes[0].host(53);
    create_resolver(address, std::nullopt);
    isps_[isp].resolver_ips.push_back(address);
    // Give named ISPs an elevated Google share so path hijackers targeting
    // their Google users (e.g. Uzone) have a population to hit.
    create_nodes(isp, scaled(entry.nodes), false, 0.08, 0.02, DnsHijackSource::kNone, {});
    used_by_country[entry.country] += entry.nodes;
  }

  // 3. Table 7 carriers: mobile ASes with image transcoders (interceptors
  //    attached in assign_http_modifiers).
  for (const auto& entry : spec_.transcoders) {
    const std::size_t isp =
        create_isp(entry.isp, entry.country, OrgKind::kMobileIsp, {entry.asn});
    const Ipv4Address address = *isps_[isp].prefixes[0].host(53);
    create_resolver(address, std::nullopt);
    isps_[isp].resolver_ips.push_back(address);
    // Floor the carrier populations: Table 7's smallest ASes (10-25 nodes
    // at paper scale) must stay measurable after down-scaling.
    const int nodes = std::max(scaled(entry.nodes), std::min(entry.nodes, 12));
    create_nodes(isp, nodes, false, 0.04, 0.02, DnsHijackSource::kNone, {});
    used_by_country[entry.country] += entry.nodes;
  }

  // 4. Filtering ISPs (Rimon).
  for (const auto& entry : spec_.isp_filters) {
    const std::size_t isp = create_isp(entry.isp, entry.country,
                                       OrgKind::kBroadbandIsp,
                                       entry.asn != 0 ? std::vector<Asn>{entry.asn}
                                                      : known_asns(entry.isp));
    const Ipv4Address address = *isps_[isp].prefixes[0].host(53);
    create_resolver(address, std::nullopt);
    isps_[isp].resolver_ips.push_back(address);
    create_nodes(isp, scaled(entry.nodes), false, 0.04, 0.02, DnsHijackSource::kNone, {});
    used_by_country[entry.country] += entry.nodes;
  }

  // 5. Country fill: generic ISPs up to the country total. The Table 3
  //    remainder (extra_hijacked_nodes) is spread THINLY: every generic
  //    resolver in the country hijacks a small per-subscriber fraction
  //    (deterministic per node), which reproduces §4.2's finding that most
  //    large ASes contain *some* hijacked nodes while no single generic
  //    server clears Table 4's >=90% reporting bar.
  for (const auto& country : spec_.countries) {
    const int generic_budget =
        std::max(0, country.total_nodes - used_by_country[country.code]);
    if (generic_budget <= 0) continue;
    const double hijack_fraction =
        std::min(0.85, static_cast<double>(country.extra_hijacked_nodes) /
                           std::max(1, generic_budget));
    // The hijack only bites for nodes that use the ISP resolver.
    const double isp_user_share = std::max(
        0.05, 1.0 - country.google_dns_fraction - country.public_dns_fraction);
    const double hijack_probability = std::min(1.0, hijack_fraction / isp_user_share);

    const int isp_count = std::max(1, country.isp_count);
    for (int i = 0; i < isp_count; ++i) {
      const int nodes = generic_budget / isp_count +
                        (i < generic_budget % isp_count ? 1 : 0);
      if (nodes <= 0) continue;
      std::vector<Asn> asns;
      for (int a = 0; a < std::max(1, country.ases_per_isp); ++a) {
        asns.push_back(next_synthetic_asn_++);
      }
      const std::string name = country.code + " ISP " + std::to_string(i + 1);
      const std::size_t isp =
          create_isp(name, country.code, OrgKind::kBroadbandIsp, asns);

      std::optional<dns::NxdomainHijackPolicy> policy;
      if (hijack_probability > 0) {
        const std::string slug =
            util::to_lower(country.code) + "-g" + std::to_string(i + 1);
        const Ipv4Address landing = create_ad_server(
            "dns-assist." + slug + ".example.net", *isps_[isp].prefixes[0].host(80),
            false);
        policy = dns::NxdomainHijackPolicy{landing, 60, hijack_probability};
      }
      for (std::size_t r = 0; r < std::max<std::size_t>(1, asns.size() / 2); ++r) {
        const Ipv4Address address = *isps_[isp].prefixes[r % isps_[isp].prefixes.size()]
                                         .host(53 + static_cast<std::uint32_t>(r) * 8);
        create_resolver(address, policy);
        isps_[isp].resolver_ips.push_back(address);
      }
      create_nodes(isp, scaled(nodes), false, country.google_dns_fraction,
                   country.public_dns_fraction, DnsHijackSource::kNone, {});
      // Ground truth for the probabilistic hijack: the resolver's decision
      // is a deterministic function of the node's zID (stable_hijack_roll),
      // so we can record exactly which nodes it will affect.
      if (hijack_probability > 0) {
        for (const auto index : isps_[isp].node_indices) {
          NodeBuild& node = nodes_[index];
          if (node.uses_google) continue;
          if (node.truth.dns_hijack != DnsHijackSource::kNone) continue;
          // Only nodes on this ISP's resolvers (not public-resolver users).
          bool on_isp_resolver = false;
          for (const auto& resolver : isps_[isp].resolver_ips) {
            on_isp_resolver = on_isp_resolver || node.resolver == resolver;
          }
          if (!on_isp_resolver) continue;
          if (proxy::stable_hijack_roll(node.zid) < hijack_probability) {
            node.truth.dns_hijack = DnsHijackSource::kIspResolver;
            node.truth.dns_hijack_operator = name;
          }
        }
      }
    }
  }
}

std::size_t WorldBuilder::find_isp(std::string_view name,
                                   const CountryCode& country) const {
  for (std::size_t i = 0; i < isps_.size(); ++i) {
    if (isps_[i].name == name && (country.empty() || isps_[i].country == country)) {
      return i;
    }
  }
  return isps_.size();
}

std::vector<std::size_t> WorldBuilder::pick_spread(
    std::string_view purpose, int count, int as_spread, int country_spread,
    const std::function<bool(const NodeBuild&)>& predicate) {
  util::StreamRng rng(seed_, util::fnv1a64(purpose), "spread");
  // Group candidates by country, limit to `country_spread` countries, then
  // by AS limited to `as_spread` ASes, and deal round-robin across the
  // surviving AS pools. This reproduces the install-base footprints the
  // paper reports (e.g. TrendMicro: 734 ASes but only 13 countries).
  std::map<std::string, std::map<Asn, std::vector<std::size_t>>> by_country;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (predicate(nodes_[i])) by_country[nodes_[i].country][nodes_[i].asn].push_back(i);
  }

  // Prefer the countries with the most candidates (stable), tie-broken by
  // name, then randomly drop down to the allowed spread.
  std::vector<std::string> countries;
  countries.reserve(by_country.size());
  for (const auto& [country, groups] : by_country) countries.push_back(country);
  std::sort(countries.begin(), countries.end(),
            [&](const std::string& a, const std::string& b) {
              std::size_t na = 0, nb = 0;
              for (const auto& [asn, v] : by_country[a]) na += v.size();
              for (const auto& [asn, v] : by_country[b]) nb += v.size();
              if (na != nb) return na > nb;
              return a < b;
            });
  if (country_spread > 0 &&
      countries.size() > static_cast<std::size_t>(country_spread)) {
    countries.resize(static_cast<std::size_t>(country_spread));
  }

  const int scaled_as_spread =
      std::max(1, static_cast<int>(std::llround(as_spread * scale_)));
  std::vector<std::vector<std::size_t>> pools;
  for (const auto& country : countries) {
    auto& groups = by_country[country];
    std::vector<std::vector<std::size_t>> country_pools;
    country_pools.reserve(groups.size());
    for (auto& [asn, indices] : groups) country_pools.push_back(std::move(indices));
    for (std::size_t i = country_pools.size(); i > 1; --i) {
      std::swap(country_pools[i - 1], country_pools[rng.index(i)]);
    }
    // Per-country AS budget proportional to the overall as_spread.
    const std::size_t budget = std::max<std::size_t>(
        1, static_cast<std::size_t>(scaled_as_spread) / countries.size() + 1);
    if (country_pools.size() > budget) country_pools.resize(budget);
    for (auto& pool : country_pools) pools.push_back(std::move(pool));
  }
  for (std::size_t i = pools.size(); i > 1; --i) {
    std::swap(pools[i - 1], pools[rng.index(i)]);
  }

  std::vector<std::size_t> picked;
  std::size_t cursor = 0;
  while (static_cast<int>(picked.size()) < count && !pools.empty()) {
    const std::size_t slot = cursor % pools.size();
    auto& pool = pools[slot];
    if (pool.empty()) {
      pools.erase(pools.begin() + static_cast<std::ptrdiff_t>(slot));
      continue;
    }
    picked.push_back(pool.back());
    pool.pop_back();
    ++cursor;
  }
  return picked;
}

void WorldBuilder::assign_public_hijack_users() {
  for (const auto& service : spec_.public_resolver_hijackers) {
    const auto& services = public_hijack_services_[service.operator_name];
    assert(!services.empty());
    const auto picked = pick_spread(
        "public-hijack|" + service.operator_name, scaled(service.nodes), 20, 5,
        [](const NodeBuild& node) {
          return node.truth.dns_hijack == DnsHijackSource::kNone && !node.uses_google;
        });
    for (std::size_t i = 0; i < picked.size(); ++i) {
      NodeBuild& node = nodes_[picked[i]];
      node.resolver = services[i % services.size()];
      node.uses_google = false;
      node.truth.dns_hijack = DnsHijackSource::kPublicResolver;
      node.truth.dns_hijack_operator = service.operator_name;
    }
  }
}

void WorldBuilder::assign_path_and_host_dns_hijackers() {
  std::uint32_t adtech_host = 180;
  const std::size_t adtech = find_isp("TFT AdTech Hosting", "US");

  for (const auto& entry : spec_.path_hijackers) {
    const std::size_t isp = find_isp(entry.isp, entry.country);
    if (isp >= isps_.size()) continue;
    // The landing server may already exist (resolver hijacker of the same
    // ISP); reuse it through a fresh rewriter either way.
    const Ipv4Address landing = create_ad_server(
        entry.landing_host, *isps_[adtech].prefixes[0].host(adtech_host++), false);
    auto rewriter = std::make_shared<middlebox::NxdomainRewriter>(
        middlebox::NxdomainRewriter::Config{entry.isp + " path middlebox", landing,
                                            1.0, 60});
    const std::size_t isp_index = isp;
    // Prefer Google-DNS users of the ISP (that is where the paper can see
    // path hijacking); convert clean ISP-resolver users if too few.
    auto picked = pick_spread("path-hijack|" + entry.isp,
                              scaled(entry.google_dns_nodes), entry.as_spread, 1,
                              [&](const NodeBuild& node) {
                                return node.isp == isp_index && node.uses_google;
                              });
    const int deficit = scaled(entry.google_dns_nodes) - static_cast<int>(picked.size());
    if (deficit > 0) {
      // Not enough Google-DNS users: some subscribers of this ISP (even of
      // ISPs whose own resolvers hijack) configured 8.8.8.8 themselves —
      // convert a few, clearing any resolver-level hijack truth.
      for (const auto extra : pick_spread(
               "path-hijack-extra|" + entry.isp, deficit, entry.as_spread, 1,
               [&](const NodeBuild& node) {
                 return node.isp == isp_index && !node.uses_google;
               })) {
        nodes_[extra].resolver = Ipv4Address(8, 8, 8, 8);
        nodes_[extra].uses_google = true;
        nodes_[extra].truth.dns_hijack = DnsHijackSource::kNone;
        nodes_[extra].truth.dns_hijack_operator.clear();
        picked.push_back(extra);
      }
    }
    for (const auto index : picked) {
      NodeBuild& node = nodes_[index];
      node.dns_interceptors.push_back(rewriter);
      // Path boxes fire regardless of resolver; for resolver-hijacked nodes
      // the resolver wins first, so only record truth for clean-DNS nodes.
      if (node.truth.dns_hijack == DnsHijackSource::kNone) {
        node.truth.dns_hijack = DnsHijackSource::kPathMiddlebox;
        node.truth.dns_hijack_operator = entry.isp;
      }
    }
  }

  // Scattered CPE-level hijacking: small per-ISP clusters, each with its
  // own landing host (below Table 5's reporting threshold).
  if (spec_.scattered_google_hijack_nodes > 0) {
    const auto picked = pick_spread(
        "scattered-cpe", scaled(spec_.scattered_google_hijack_nodes), 120, 40,
        [](const NodeBuild& node) {
          return node.uses_google && node.truth.dns_hijack == DnsHijackSource::kNone &&
                 node.dns_interceptors.empty();
        });
    std::map<std::size_t, std::shared_ptr<middlebox::NxdomainRewriter>> per_isp;
    for (const auto index : picked) {
      NodeBuild& node = nodes_[index];
      auto& rewriter = per_isp[node.isp];
      if (!rewriter) {
        const std::string slug = "cpe-" + std::to_string(node.isp);
        const Ipv4Address landing = create_ad_server(
            "dns-helper." + slug + ".example.net",
            *isps_[adtech].prefixes[0].host(adtech_host++), false);
        rewriter = std::make_shared<middlebox::NxdomainRewriter>(
            middlebox::NxdomainRewriter::Config{isps_[node.isp].name + " CPE box",
                                                landing, 1.0, 60});
      }
      node.dns_interceptors.push_back(rewriter);
      node.truth.dns_hijack = DnsHijackSource::kPathMiddlebox;
      node.truth.dns_hijack_operator = isps_[node.isp].name + " CPE box";
    }
  }

  for (const auto& entry : spec_.host_dns_hijackers) {
    const Ipv4Address landing = create_ad_server(
        entry.landing_host, *isps_[adtech].prefixes[0].host(adtech_host++), false);
    auto rewriter = std::make_shared<middlebox::NxdomainRewriter>(
        middlebox::NxdomainRewriter::Config{entry.product, landing, 1.0, 60});
    const auto picked = pick_spread(
        "host-dns|" + entry.product, scaled(entry.nodes), entry.as_spread,
        entry.country_spread, [](const NodeBuild& node) {
          return node.uses_google && node.truth.dns_hijack == DnsHijackSource::kNone &&
                 node.dns_interceptors.empty();
        });
    for (const auto index : picked) {
      NodeBuild& node = nodes_[index];
      node.dns_interceptors.push_back(rewriter);
      node.truth.dns_hijack = DnsHijackSource::kHostSoftware;
      node.truth.dns_hijack_operator = entry.product;
    }
  }
}

void WorldBuilder::assign_http_modifiers() {
  const auto boosted = [&](int nodes) {
    return scaled(static_cast<int>(nodes * spec_.adware_install_boost));
  };

  // Host adware (Table 6).
  for (const auto& entry : spec_.adware) {
    auto injector = std::make_shared<middlebox::HtmlInjector>(
        middlebox::HtmlInjector::Config{entry.name, entry.snippet, 1024, 1.0});
    const auto picked =
        pick_spread("adware|" + entry.name, boosted(entry.nodes), entry.as_spread,
                    entry.country_spread,
                    [](const NodeBuild& node) { return node.truth.html_injector.empty(); });
    for (const auto index : picked) {
      nodes_[index].http_interceptors.push_back(injector);
      nodes_[index].truth.html_injector = entry.name;
    }
  }

  // ISP filters (Rimon/NetSpark): every node of the AS.
  for (const auto& entry : spec_.isp_filters) {
    const std::size_t isp = find_isp(entry.isp, entry.country);
    if (isp >= isps_.size()) continue;
    auto injector = std::make_shared<middlebox::HtmlInjector>(
        middlebox::HtmlInjector::Config{entry.isp + " NetSpark filter", entry.snippet,
                                        0, 1.0});
    for (const auto index : isps_[isp].node_indices) {
      nodes_[index].http_interceptors.push_back(injector);
      nodes_[index].truth.html_injector = entry.isp + " NetSpark filter";
    }
  }

  // Mobile transcoders (Table 7): per-node quality drawn from the carrier's
  // quality set; fraction models per-plan deployment.
  for (const auto& entry : spec_.transcoders) {
    const std::size_t isp = find_isp(entry.isp, entry.country);
    if (isp >= isps_.size()) continue;
    std::vector<std::shared_ptr<middlebox::ImageTranscoder>> per_quality;
    for (const int quality : entry.qualities) {
      per_quality.push_back(std::make_shared<middlebox::ImageTranscoder>(
          middlebox::ImageTranscoder::Config{
              entry.isp + " transcoder q" + std::to_string(quality),
              static_cast<std::uint8_t>(quality), 1.0}));
    }
    for (const auto index : isps_[isp].node_indices) {
      util::StreamRng stream = node_stream(nodes_[index], "transcode");
      if (!stream.chance(entry.fraction)) continue;
      const auto& transcoder = per_quality[stream.index(per_quality.size())];
      nodes_[index].http_interceptors.push_back(transcoder);
      nodes_[index].truth.image_transcoder = std::string(transcoder->name());
    }
  }

  // Block pages and JS/CSS error replacement (§5.2 residue).
  auto blocker = std::make_shared<middlebox::ContentBlocker>(
      middlebox::ContentBlocker::Config{
          "bandwidth-cap",
          "<html><body><h1>Bandwidth exceeded</h1><p>blocked</p></body></html>", 403});
  for (const auto index :
       pick_spread("blockpage", boosted(spec_.blockpage_nodes), 10, 5,
                   [](const NodeBuild& node) {
         return node.http_interceptors.empty();
       })) {
    nodes_[index].http_interceptors.push_back(blocker);
    nodes_[index].truth.content_blocker = "bandwidth-cap";
  }
  auto js_replacer = std::make_shared<middlebox::ObjectReplacer>(
      middlebox::ObjectReplacer::Config{"js-error-box", "javascript",
                                        "<html><body>error</body></html>", 200});
  for (const auto index :
       pick_spread("js-error", boosted(spec_.js_error_nodes), 20, 10,
                   [](const NodeBuild& node) {
         return node.http_interceptors.empty() && node.truth.content_blocker.empty();
       })) {
    nodes_[index].http_interceptors.push_back(js_replacer);
    nodes_[index].truth.object_replacer = "js-error-box";
  }
  auto css_replacer = std::make_shared<middlebox::ObjectReplacer>(
      middlebox::ObjectReplacer::Config{"css-error-box", "css", "", 200});
  for (const auto index :
       pick_spread("css-error", boosted(spec_.css_error_nodes), 8, 4,
                   [](const NodeBuild& node) {
         return node.http_interceptors.empty() && node.truth.content_blocker.empty() &&
                node.truth.object_replacer.empty();
       })) {
    nodes_[index].http_interceptors.push_back(css_replacer);
    nodes_[index].truth.object_replacer = "css-error-box";
  }
}

void WorldBuilder::build_https_sites() {
  const sim::Instant not_before = sim::Instant::epoch() - sim::Duration::hours(24 * 365);
  const sim::Instant not_after = sim::Instant::epoch() + sim::Duration::hours(24 * 365 * 5);

  // Public web PKI: three roots, one intermediate in use.
  cas_.reserve(8);
  for (int i = 0; i < 3; ++i) {
    cas_.push_back(tls::CertificateAuthority::make_root(
        tls::DistinguishedName{"TFT Global Root CA " + std::to_string(i + 1),
                               "TFT Trust Services", "US"},
        util::fnv1a64("root-ca-" + std::to_string(i)), not_before, not_after));
    world_->public_roots.add(cas_[static_cast<std::size_t>(i)].certificate());
  }
  cas_.push_back(tls::CertificateAuthority::make_intermediate(
      cas_[0], tls::DistinguishedName{"TFT TLS Issuing CA", "TFT Trust Services", "US"},
      util::fnv1a64("issuing-ca")));
  site_ca_ = &cas_.back();

  const std::size_t hosting = create_isp("TFT Web Hosting", "US", OrgKind::kHosting, {});
  std::uint32_t host_index = 100;
  const auto new_site_address = [&] {
    return *isps_[hosting].prefixes[0].host(host_index++);
  };

  const auto add_site = [&](const std::string& host, HttpsSite::Class site_class,
                            HttpsSite::InvalidKind invalid_kind,
                            const CountryCode& country) {
    HttpsSite site;
    site.host = host;
    site.address = new_site_address();
    site.site_class = site_class;
    site.invalid_kind = invalid_kind;
    site.country = country;

    tls::CertificateAuthority::LeafOptions options;
    options.hosts = {host};
    switch (invalid_kind) {
      case HttpsSite::InvalidKind::kNone:
        site.genuine_chain = site_ca_->chain_for(site_ca_->issue(options));
        break;
      case HttpsSite::InvalidKind::kSelfSigned: {
        tls::Certificate leaf;
        leaf.subject = tls::DistinguishedName{host, "Self Signed", "US"};
        leaf.issuer = leaf.subject;
        leaf.serial = 1;
        leaf.not_before = not_before;
        leaf.not_after = not_after;
        leaf.subject_alt_names = {host};
        leaf.public_key = util::fnv1a64("self-signed|" + host);
        leaf.signed_by = leaf.public_key;
        site.genuine_chain = {leaf};
        break;
      }
      case HttpsSite::InvalidKind::kExpired:
        options.not_before = sim::Instant::epoch() - sim::Duration::hours(24 * 730);
        options.not_after = sim::Instant::epoch() - sim::Duration::hours(24);
        site.genuine_chain = site_ca_->chain_for(site_ca_->issue(options));
        break;
      case HttpsSite::InvalidKind::kWrongCommonName:
        options.hosts = {"wrong-host.example.net"};
        options.subject_override =
            tls::DistinguishedName{"wrong-host.example.net", "TFT Study", "US"};
        site.genuine_chain = site_ca_->chain_for(site_ca_->issue(options));
        break;
    }

    auto server = std::make_shared<tls::TlsServer>(host);
    server->set_default_chain(site.genuine_chain);
    world_->tls_endpoints.add(site.address, server);
    world_->https_sites.push_back(std::move(site));
  };

  // Per-country popular sites (Alexa stand-in), limited to the countries
  // the paper had rankings for.
  int countries_done = 0;
  for (const auto& country : spec_.countries) {
    if (countries_done >= spec_.https.countries_with_rankings) break;
    ++countries_done;
    for (int i = 0; i < spec_.https.popular_sites_per_country; ++i) {
      add_site("www.top" + std::to_string(i + 1) + "." +
                   util::to_lower(country.code) + ".tft-popular.net",
               HttpsSite::Class::kPopular, HttpsSite::InvalidKind::kNone, country.code);
    }
  }
  for (const auto& university : spec_.https.universities) {
    add_site(university, HttpsSite::Class::kUniversity, HttpsSite::InvalidKind::kNone,
             "US");
  }
  add_site("self-signed.tft-study.net", HttpsSite::Class::kInvalid,
           HttpsSite::InvalidKind::kSelfSigned, "US");
  add_site("expired.tft-study.net", HttpsSite::Class::kInvalid,
           HttpsSite::InvalidKind::kExpired, "US");
  add_site("wrong-cn.tft-study.net", HttpsSite::Class::kInvalid,
           HttpsSite::InvalidKind::kWrongCommonName, "US");
}

void WorldBuilder::assign_cert_replacers() {
  // Block list for content filters: the top-10 popular sites of every
  // country (so filter users everywhere have blockable sites in their
  // per-country scan list; detection needs the random phase-1 pick to land
  // on a blocked site).
  std::unordered_set<std::string> blocked_hosts;
  for (const auto& site : world_->https_sites) {
    if (site.site_class != HttpsSite::Class::kPopular) continue;
    for (int i = 1; i <= 10; ++i) {
      if (site.host.starts_with("www.top" + std::to_string(i) + ".")) {
        blocked_hosts.insert(site.host);
      }
    }
  }

  for (const auto& spec : spec_.cert_replacers) {
    tls::ForgeProfile forge;
    forge.issuer = tls::DistinguishedName{spec.issuer_cn, spec.product, "US"};
    forge.signing_key = util::fnv1a64("product-ca|" + spec.product);
    forge.reuse_public_key = spec.reuse_public_key;
    if (spec.untrusted_issuer_for_invalid) {
      forge.untrusted_issuer = tls::DistinguishedName{
          spec.issuer_cn + " (untrusted)", spec.product, "US"};
    }
    forge.copy_subject_fields = spec.kind == CertReplacerSpec::Kind::kMalware;

    middlebox::CertReplacer::Config config;
    config.name = spec.product;
    config.forge = forge;
    config.only_if_upstream_valid = spec.only_if_upstream_valid;
    if (spec.only_blocked_hosts) config.only_hosts = blocked_hosts;
    // Products that distinguish valid/invalid upstreams need to verify.
    if (spec.untrusted_issuer_for_invalid || spec.only_if_upstream_valid) {
      config.public_roots = &world_->public_roots;
    }

    const auto only_country = spec.only_country;
    // Floor the small products (McAfee: 6 nodes at paper scale) so every
    // Table 8 issuer stays detectable after down-scaling.
    const int installs = std::max(scaled(spec.nodes), std::min(spec.nodes, 5));
    const auto picked = pick_spread(
        "cert-replacer|" + spec.product, installs, 200, 50,
        [&](const NodeBuild& node) {
          if (only_country && node.country != *only_country) return false;
          return node.truth.cert_replacer.empty();
        });
    for (const auto index : picked) {
      NodeBuild& node = nodes_[index];
      node.tls_interceptors.push_back(std::make_shared<middlebox::CertReplacer>(
          config, util::fnv1a64("host|" + node.zid)));
      node.truth.cert_replacer = spec.product;
      if (spec.product == "OpenDNS") {
        node.resolver = opendns_service_;
        node.uses_google = false;
      }
      if (spec.also_injects_html) {
        node.http_interceptors.push_back(std::make_shared<middlebox::HtmlInjector>(
            middlebox::HtmlInjector::Config{
                spec.product + " injector",
                "\n<script src=\"http://cloudguard.me/inject.js\"></script>\n", 1024,
                1.0}));
        if (node.truth.html_injector.empty()) {
          node.truth.html_injector = spec.product + " injector";
        }
      }
    }
  }
}

void WorldBuilder::assign_monitors() {
  const auto build_profile = [&](const MonitorSpec& spec,
                                 const std::vector<Ipv4Address>& sources) {
    middlebox::MonitorProfile profile;
    profile.name = spec.entity;
    profile.source_addresses = sources;
    profile.user_agent = spec.entity + " content-scanner/1.0";
    for (const auto& refetch : spec.refetches) {
      middlebox::RefetchSpec out;
      out.min_delay_s = refetch.min_delay_s;
      out.max_delay_s = refetch.max_delay_s;
      out.prefetch_probability = refetch.prefetch_probability;
      out.hold_s = refetch.hold_s;
      if (refetch.fixed_source_last) out.source_index = 0;
      profile.refetches.push_back(out);
    }
    profile.probability = 1.0;
    return profile;
  };

  for (const auto& spec : spec_.monitors) {
    const OrgKind kind = spec.kind == MonitorSpec::Kind::kVpn
                             ? OrgKind::kVpnProvider
                             : OrgKind::kSecurityVendor;
    std::size_t isp;
    if (spec.kind == MonitorSpec::Kind::kIspService) {
      isp = find_isp(spec.isp, "");
      if (isp >= isps_.size()) continue;
    } else {
      isp = create_isp(spec.entity, spec.home_country, kind, {});
    }

    // IP pools are kept at paper scale (they cost nothing) so Table 9's IP
    // column is directly comparable.
    std::vector<Ipv4Address> sources;
    for (int i = 0; i < std::max(1, spec.source_ips); ++i) {
      sources.push_back(
          *isps_[isp].prefixes[0].host(10 + static_cast<std::uint32_t>(i)));
    }
    auto monitor = std::make_shared<middlebox::ContentMonitor>(
        build_profile(spec, sources));

    std::vector<std::size_t> picked;
    if (spec.kind == MonitorSpec::Kind::kIspService) {
      for (const auto index : isps_[isp].node_indices) {
        if (!nodes_[index].truth.content_blocker.empty()) continue;
        if (!nodes_[index].truth.monitor.empty()) continue;  // one monitor per node
        util::StreamRng stream(
            seed_,
            util::hash_combine(util::fnv1a64(nodes_[index].zid),
                               util::fnv1a64(spec.entity)),
            "monitor");
        if (stream.chance(spec.isp_node_fraction)) picked.push_back(index);
      }
    } else {
      picked = pick_spread("monitor|" + spec.entity, scaled(spec.nodes),
                           spec.as_spread, spec.country_spread,
                           [](const NodeBuild& node) {
                             return node.truth.monitor.empty() &&
                                    node.truth.content_blocker.empty();
                           });
    }

    std::shared_ptr<middlebox::VpnEgressRewriter> vpn;
    if (spec.kind == MonitorSpec::Kind::kVpn) {
      // Ten VPN egress locations, distinct from the scanner addresses.
      std::vector<Ipv4Address> egress;
      for (std::uint32_t i = 0; i < 10; ++i) {
        egress.push_back(*isps_[isp].prefixes[0].host(2000 + i));
      }
      vpn = std::make_shared<middlebox::VpnEgressRewriter>(spec.entity + " VPN",
                                                           std::move(egress));
    }

    for (const auto index : picked) {
      NodeBuild& node = nodes_[index];
      // Monitors observe the request before any blocker can short-circuit
      // it (host software sees the URL even when a downstream box blocks).
      node.http_interceptors.insert(node.http_interceptors.begin(), monitor);
      if (vpn) {
        node.http_interceptors.insert(node.http_interceptors.begin(), vpn);
        node.truth.uses_vpn = true;
      }
      node.truth.monitor = spec.entity;
    }
  }

  // Long tail: many small monitoring groups (the rest of the "54 groups").
  if (spec_.tail_monitor_groups > 0 && spec_.tail_monitor_nodes > 0) {
    const int per_group =
        std::max(1, scaled(spec_.tail_monitor_nodes) / spec_.tail_monitor_groups);
    for (int g = 0; g < spec_.tail_monitor_groups; ++g) {
      const std::size_t isp =
          create_isp("Monitor Tail " + std::to_string(g + 1), "US",
                     OrgKind::kSecurityVendor, {});
      MonitorSpec tail;
      tail.entity = "Monitor Tail " + std::to_string(g + 1);
      tail.refetches = {MonitorSpec::Refetch{5, 3600, 0, 0, false}};
      auto monitor = std::make_shared<middlebox::ContentMonitor>(
          build_profile(tail, {*isps_[isp].prefixes[0].host(10)}));
      for (const auto index :
           pick_spread("monitor-tail|" + tail.entity, per_group, 5, 3,
                       [](const NodeBuild& node) {
             return node.truth.monitor.empty() && node.truth.content_blocker.empty();
           })) {
        nodes_[index].http_interceptors.insert(
            nodes_[index].http_interceptors.begin(), monitor);
        nodes_[index].truth.monitor = tail.entity;
      }
    }
  }
}

void WorldBuilder::assign_smtp_interceptors() {
  for (const auto& spec : spec_.smtp_interceptors) {
    std::shared_ptr<smtp::SmtpInterceptor> interceptor;
    switch (spec.kind) {
      case SmtpInterceptSpec::Kind::kStripStarttls:
        interceptor = std::make_shared<smtp::StarttlsStripper>(spec.name);
        break;
      case SmtpInterceptSpec::Kind::kBlockPort:
        interceptor = std::make_shared<smtp::PortBlocker>(spec.name);
        break;
      case SmtpInterceptSpec::Kind::kRewriteBanner:
        interceptor = std::make_shared<smtp::BannerRewriter>(
            spec.name, "mail-gateway ESMTP ready");
        break;
      case SmtpInterceptSpec::Kind::kTagBody:
        interceptor = std::make_shared<smtp::BodyTagger>(
            spec.name, "-- scanned by " + spec.name);
        break;
    }
    for (const auto index :
         pick_spread("smtp|" + spec.name, scaled(spec.nodes), spec.as_spread,
                     spec.country_spread,
                     [](const NodeBuild& node) {
                       return node.truth.smtp_interceptor.empty();
                     })) {
      nodes_[index].smtp_interceptors.push_back(interceptor);
      nodes_[index].truth.smtp_interceptor = spec.name;
      nodes_[index].truth.smtp_interceptor_kind = std::string(to_string(spec.kind));
    }
  }
}

void WorldBuilder::finalize() {
  proxy::Environment environment;
  environment.resolvers = &world_->resolvers;
  environment.web = &world_->web;
  environment.tls = &world_->tls_endpoints;
  environment.smtp = &world_->smtp;
  environment.clock = &world_->clock;
  environment.topology = &world_->topology;
  environment.metrics = &world_->metrics;
  environment.recorder = &world_->recorder;

  proxy::SuperProxy::Config proxy_config;
  proxy_config.allow_arbitrary_ports = spec_.arbitrary_port_overlay;
  // The overlay's node-pick / client-port streams are keyed off the study
  // seed: worlds built from different seeds route differently, worlds built
  // from the same seed route identically.
  proxy_config.stream_seed = util::stream_seed(seed_, 0, "super-proxy");
  world_->luminati = std::make_unique<proxy::SuperProxy>(proxy_config, environment);

  for (const auto& isp : isps_) {
    if (!isp.resolver_ips.empty()) {
      world_->isp_resolvers[isp.name] = isp.resolver_ips;
    }
  }

  for (auto& node : nodes_) {
    proxy::ExitNodeAgent::Config config;
    config.zid = node.zid;
    config.address = node.address;
    config.asn = node.asn;
    config.country = node.country;
    config.dns_resolver = node.resolver;
    config.dns_interceptors = std::move(node.dns_interceptors);
    config.http_interceptors = std::move(node.http_interceptors);
    config.tls_interceptors = std::move(node.tls_interceptors);
    config.smtp_interceptors = std::move(node.smtp_interceptors);
    config.failure_probability = spec_.node_failure_probability;
    config.rng_seed = util::stream_seed(seed_, util::fnv1a64(node.zid), "node");
    world_->truth.node(node.zid) = node.truth;
    world_->luminati->add_exit_node(
        std::make_shared<proxy::ExitNodeAgent>(std::move(config), environment));
  }

  record_world_gauges();
}

void WorldBuilder::record_world_gauges() {
  // Deterministic arithmetic model of the world's resident footprint: entity
  // counts times fixed per-entity cost constants (chosen once, documented
  // here), never sizeof() — the numbers must be byte-identical across
  // platforms and jobs because gauges land in the deterministic metrics
  // section. Real wall-clock memory (peak RSS) is reported separately under
  // `timing` by tft-study.
  obs::Registry& metrics = world_->metrics;
  const std::int64_t nodes = static_cast<std::int64_t>(nodes_.size());
  const std::int64_t isps = static_cast<std::int64_t>(isps_.size());
  const std::int64_t resolvers =
      static_cast<std::int64_t>(world_->resolvers.unicast_count() +
                                world_->resolvers.anycast_count());
  const std::int64_t ases =
      static_cast<std::int64_t>(world_->topology.as_count());
  const std::int64_t orgs =
      static_cast<std::int64_t>(world_->topology.organization_count());
  const std::int64_t prefixes =
      static_cast<std::int64_t>(world_->topology.announced_prefix_count());
  const std::int64_t sites =
      static_cast<std::int64_t>(world_->https_sites.size());
  metrics.set_gauge("world.nodes", nodes);
  metrics.set_gauge("world.isps", isps);
  metrics.set_gauge("world.resolvers", resolvers);
  metrics.set_gauge("world.ases", ases);
  metrics.set_gauge("world.https_sites", sites);
  // Per-entity byte constants: node agent (config + interceptor chains +
  // truth entry) 512B, AS/org/prefix table rows 64B each, resolver
  // (zone-walk state + cache headroom) 4096B.
  metrics.set_gauge("world.bytes.nodes", nodes * 512);
  metrics.set_gauge("world.bytes.topology", (ases + orgs + prefixes) * 64);
  metrics.set_gauge("world.bytes.resolver_tables", resolvers * 4096);
  metrics.set_gauge("world.bytes.total",
                    nodes * 512 + (ases + orgs + prefixes) * 64 +
                        resolvers * 4096);
}

std::unique_ptr<World> WorldBuilder::build() {
  build_measurement_infrastructure();
  build_google_dns();
  build_public_resolvers();
  build_isps_and_nodes();
  assign_public_hijack_users();
  assign_path_and_host_dns_hijackers();
  assign_http_modifiers();
  build_https_sites();
  assign_cert_replacers();
  assign_monitors();
  assign_smtp_interceptors();
  finalize();
  return std::move(world_);
}

}  // namespace

std::unique_ptr<World> build_world(const WorldSpec& spec, double scale,
                                   std::uint64_t seed) {
  assert(scale > 0);
  return WorldBuilder(spec, scale, seed).build();
}

}  // namespace tft::world
