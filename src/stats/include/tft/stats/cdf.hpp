// Empirical distributions: the CDFs and percentiles the paper plots
// (Figure 5) and summary ratios used throughout the tables.
#pragma once

#include <string>
#include <vector>

namespace tft::stats {

/// Empirical CDF over double-valued samples.
///
/// Thread safety: samples are kept sorted as an invariant of the mutating
/// operations (constructor and add()), so every const accessor is a pure
/// read. Any number of threads may share a const EmpiricalCdf; mutation
/// requires external synchronization, as usual.
///
/// Empty distributions: at() is 0 and the curve renderers produce flat
/// output; percentile()/min()/max()/mean() return quiet NaN (there is no
/// sample to report), never undefined behavior.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Insert one sample, keeping the sorted invariant (O(n) worst case —
  /// for bulk loads prefer the vector constructor, which sorts once).
  void add(double sample);

  /// Fold another distribution in (linear two-way merge of the sorted
  /// sample vectors). The result depends only on the combined multiset of
  /// samples, so partial CDFs accumulated over disjoint shards and merged
  /// in any fixed order equal the single-pass distribution exactly — the
  /// algebra the sharded study's streaming aggregation relies on.
  void merge_from(const EmpiricalCdf& other);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x. 0 for an empty distribution.
  double at(double x) const;

  /// p-th percentile via linear interpolation, p in [0, 100].
  /// NaN for an empty distribution.
  double percentile(double p) const;

  double min() const;   // NaN when empty
  double max() const;   // NaN when empty
  double mean() const;  // NaN when empty
  double median() const { return percentile(50); }

  /// (x, F(x)) pairs at `points` log-spaced x values over [lo, hi] —
  /// matching the paper's log-x CDF plot (Figure 5).
  std::vector<std::pair<double, double>> log_spaced_curve(double lo, double hi,
                                                          int points) const;

  /// Render a fixed-width ASCII sparkline of the CDF over log-spaced x.
  std::string ascii_curve(double lo, double hi, int width) const;

  const std::vector<double>& sorted_samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;  // invariant: sorted ascending
};

}  // namespace tft::stats
