#include "tft/core/dns_probe.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "tft/http/content.hpp"
#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/obs/shards.hpp"
#include "tft/util/hash.hpp"
#include "tft/util/rng.hpp"
#include "tft/util/stream_rng.hpp"
#include "tft/util/strings.hpp"
#include "tft/util/thread_pool.hpp"

namespace tft::core {

namespace {

/// Weighted country picker matching §3.2: countries are chosen in
/// proportion to the number of exit nodes Luminati reports there.
class CountryPicker {
 public:
  explicit CountryPicker(const proxy::SuperProxy& luminati) {
    for (const auto& [country, count] : luminati.country_counts()) {
      countries_.push_back(country);
      weights_.push_back(static_cast<double>(count));
    }
  }

  const net::CountryCode& pick(util::StreamRng& rng) const {
    return countries_[rng.weighted_index(weights_)];
  }

 private:
  std::vector<net::CountryCode> countries_;
  std::vector<double> weights_;
};

}  // namespace

DnsHijackProbe::DnsHijackProbe(world::World& world, DnsProbeConfig config)
    : world_(world), config_(config) {}

util::StreamKey DnsHijackProbe::country_stream_key() const {
  return util::StreamKey{config_.seed, 0, util::purpose_tag("country")};
}

std::size_t DnsHijackProbe::run() {
  // The crawl's only sampling draw is the per-session country pick, one
  // counter step per session: the stream can never be perturbed by (or
  // perturb) any other component, and (key, counter) is a complete
  // checkpoint of the sampler.
  util::StreamRng rng(country_stream_key(), sessions_issued_);
  CountryPicker picker(*world_.luminati);

  // The d2 trick: our zone answers "*-d2" probe names only when the query
  // arrives from the super proxy's own DNS instance; everyone else gets
  // NXDOMAIN. (The wildcard A record answers when the policy passes.)
  const net::Ipv4Address allowed_egress =
      world_.google_dns->instance_for(world_.luminati->address()).egress_address();
  const net::Ipv4Prefix google_block = world_.google_egress_block;
  const bool whole_netblock =
      config_.google_whitelist == DnsProbeConfig::GoogleWhitelist::kWholeNetblock;
  const dns::DnsName probe_zone = *dns::DnsName::parse("probe.tft-study.net");
  world_.measurement_zone->set_policy(
      [allowed_egress, google_block, whole_netblock, probe_zone](
          const dns::Question& question, net::Ipv4Address source,
          const dns::Message& query) -> std::optional<dns::Message> {
        if (!question.name.is_within(probe_zone) || question.name.labels().empty()) {
          return std::nullopt;
        }
        if (!question.name.labels().front().ends_with("-d2")) return std::nullopt;
        const bool allowed = whole_netblock ? google_block.contains(source)
                                            : source == allowed_egress;
        if (allowed) return std::nullopt;  // the wildcard A record answers
        return dns::Message::response_to(query, dns::Rcode::kNxDomain);
      });

  std::unordered_set<std::string> seen_zids;
  std::size_t stall = 0;
  std::size_t web_cursor = world_.measurement_web->request_log().size();
  std::size_t dns_cursor = world_.measurement_zone->query_log().size();

  world_.metrics.begin_span("dns.crawl", world_.clock.now());
  while ((config_.target_nodes == 0 || observations_.size() < config_.target_nodes) &&
         stall < config_.stall_limit) {
    const std::size_t session_id = sessions_issued_++;
    world_.metrics.add("dns.sessions");
    // Token includes the probe seed so repeated studies (longitudinal
    // rounds) never reuse a probe name across rounds.
    const std::string token = "s" + std::to_string(config_.seed % 100000) + "x" +
                              std::to_string(session_id);
    // Evidence chain for this session. The id is derived from the probe's
    // own sampling stream key plus its session counter, so it is stable
    // across --jobs and under probe composition (the key embeds this
    // probe's seed, which no other experiment shares).
    const std::uint64_t txn_id =
        util::hash_combine(country_stream_key().mixed(), session_id);
    world_.recorder.begin(txn_id, "dns",
                          token + "-d2.probe.tft-study.net");

    proxy::RequestOptions options;
    options.country = picker.pick(rng);
    options.session = "dns-" + std::to_string(session_id);
    options.dns_remote = true;

    // Step 2: fetch d1 to learn the node's identity.
    const auto d1 =
        *http::Url::parse("http://" + token + "-d1.probe.tft-study.net/");
    world_.recorder.event(obs::Hop::kClient, "dns-probe", "fetch-d1", d1.host,
                          static_cast<std::uint64_t>(world_.clock.now().micros));
    const auto r1 = world_.proxy().fetch(d1, options);
    if (!r1.ok()) {
      ++stall;
      world_.metrics.add("dns.failed_fetches");
      world_.recorder.end("discarded");
      web_cursor = world_.measurement_web->request_log().size();
      dns_cursor = world_.measurement_zone->query_log().size();
      continue;
    }
    if (!seen_zids.insert(r1.zid).second) {
      ++stall;
      world_.metrics.add("dns.duplicate_nodes");
      world_.recorder.end("discarded");
      web_cursor = world_.measurement_web->request_log().size();
      dns_cursor = world_.measurement_zone->query_log().size();
      continue;
    }
    stall = 0;

    DnsNodeObservation observation;
    observation.txn_id = txn_id;
    observation.zid = r1.zid;

    // Exit IP from the web server log (last request for d1's host: monitors
    // may prefetch, but the node's own request is dispatched last).
    const std::string d1_host = d1.host;
    const auto& web_log = world_.measurement_web->request_log();
    for (std::size_t i = web_cursor; i < web_log.size(); ++i) {
      if (web_log[i].host == d1_host) observation.exit_address = web_log[i].source;
    }
    if (observation.exit_address == net::Ipv4Address{}) {
      observation.exit_address = r1.exit_address;  // fall back to the debug header
    }

    // DNS server egress from the authoritative log. The first d1 query is
    // the super proxy's pre-check; the node's resolver follows. A missing
    // second query means the node shares the super proxy's DNS instance
    // (its cache answered), which we must filter (footnote 8).
    bool precheck_skipped = false;
    bool found_node_query = false;
    const auto& dns_log = world_.measurement_zone->query_log();
    const dns::DnsName d1_name = *dns::DnsName::parse(d1.host);
    for (std::size_t i = dns_cursor; i < dns_log.size(); ++i) {
      if (!dns_log[i].name.equals(d1_name)) continue;
      if (!precheck_skipped) {
        precheck_skipped = true;
        continue;
      }
      observation.dns_server = dns_log[i].source;
      found_node_query = true;
    }
    if (!found_node_query) {
      observation.dns_server = allowed_egress;
      observation.filtered_google_overlap = true;
    }

    web_cursor = world_.measurement_web->request_log().size();
    dns_cursor = world_.measurement_zone->query_log().size();

    // Step 3: fetch d2 through the same exit node.
    const auto d2 =
        *http::Url::parse("http://" + token + "-d2.probe.tft-study.net/");
    world_.recorder.event(obs::Hop::kClient, "dns-probe", "fetch-d2", d2.host,
                          static_cast<std::uint64_t>(world_.clock.now().micros));
    const auto r2 = world_.proxy().fetch(d2, options);
    if (r2.zid != r1.zid) {
      // The session was re-routed mid-measurement (node churn); discard.
      world_.metrics.add("dns.churn_discards");
      world_.recorder.end("discarded");
      seen_zids.erase(r1.zid);
      web_cursor = world_.measurement_web->request_log().size();
      dns_cursor = world_.measurement_zone->query_log().size();
      continue;
    }
    if (r2.status == proxy::ProxyStatus::kExitNodeDnsNxdomain) {
      observation.hijacked = false;
    } else if (r2.ok()) {
      if (util::contains(r2.response.body, "tft-probe-content")) {
        // The node resolved d2 to the real A record: it queried through the
        // allowed Google instance. Unmeasurable; filter.
        observation.filtered_google_overlap = true;
      } else {
        observation.hijacked = true;
        observation.hijack_content = r2.response.body;
      }
    } else {
      // Resolution failed outright; treat as unmeasured churn.
      world_.metrics.add("dns.churn_discards");
      world_.recorder.end("discarded");
      seen_zids.erase(r1.zid);
      web_cursor = world_.measurement_web->request_log().size();
      dns_cursor = world_.measurement_zone->query_log().size();
      continue;
    }

    web_cursor = world_.measurement_web->request_log().size();
    dns_cursor = world_.measurement_zone->query_log().size();
    world_.metrics.add("dns.observations");
    if (observation.hijacked) world_.metrics.add("dns.hijacked");
    if (observation.filtered_google_overlap) {
      world_.metrics.add("dns.filtered_google_overlap");
    }
    world_.recorder.end(observation.hijacked ? "hijacked"
                        : observation.filtered_google_overlap ? "filtered"
                                                              : "clean");
    observations_.push_back(std::move(observation));
  }
  world_.metrics.end_span(world_.clock.now());

  world_.measurement_zone->set_policy(nullptr);

  // Map exit IPs through RouteViews/CAIDA (§3.1). The crawl above is
  // inherently serial (every session advances shared proxy/world state),
  // but attribution is a pure const lookup per observation: shard it.
  // Shard geometry depends only on the observation count, and each shard
  // writes only its own index range, so the result is byte-identical for
  // every jobs value.
  obs::traced_for_shards(
      world_.metrics, "dns.attribute", world_.clock.now(),
      observations_.size(), util::shard_count(observations_.size()),
      config_.jobs, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto& observation = observations_[i];
          if (const auto asn = world_.topology.origin_as(observation.exit_address)) {
            observation.asn = *asn;
            if (const auto country = world_.topology.country_of(*asn)) {
              observation.country = *country;
            }
          }
        }
      });

  // Fold the attribution back into the evidence chains. The sharded pass
  // above never touches the recorder (its per-shard order depends on
  // --jobs); amending here, serially and in observation order, keeps the
  // trace byte-identical for every jobs value.
  for (const auto& observation : observations_) {
    world_.recorder.amend_node(observation.txn_id, observation.zid,
                               observation.asn, observation.country);
  }

  return observations_.size();
}

namespace {

struct ServerGroup {
  std::vector<const DnsNodeObservation*> nodes;
  std::size_t hijacked = 0;
  std::set<net::CountryCode> countries;

  double hijack_rate() const {
    return nodes.empty() ? 0 : static_cast<double>(hijacked) / nodes.size();
  }
};

}  // namespace

std::uint64_t content_shape_hash(std::string_view html) {
  // Replace every occurrence of every URL with a fixed placeholder, then
  // hash. Pages identical up to their landing URLs collapse together.
  std::string shape(html);
  auto urls = http::extract_urls(html);
  // Longest first, so a URL that prefixes another is not clobbered early.
  std::sort(urls.begin(), urls.end(), [](const std::string& a, const std::string& b) {
    return a.size() > b.size();
  });
  for (const auto& url : urls) {
    std::size_t at = 0;
    while ((at = shape.find(url, at)) != std::string::npos) {
      shape.replace(at, url.size(), "{URL}");
      at += 5;
    }
  }
  return util::fnv1a64(shape);
}

DnsReport analyze_dns(const world::World& world,
                      const std::vector<DnsNodeObservation>& observations,
                      const DnsAnalysisConfig& config) {
  DnsReport report;

  std::set<net::CountryCode> countries;
  std::set<net::Asn> ases;
  std::set<std::uint32_t> servers;
  std::map<net::CountryCode, DnsCountryRow> by_country;
  std::map<std::uint32_t, ServerGroup> by_server;

  for (const auto& observation : observations) {
    ++report.total_nodes;
    if (observation.filtered_google_overlap) {
      ++report.filtered_nodes;
      continue;
    }
    countries.insert(observation.country);
    ases.insert(observation.asn);
    servers.insert(observation.dns_server.value());
    if (observation.hijacked) {
      ++report.hijacked_nodes;
      report.evidence["hijacked"].push_back(observation.txn_id);
    }

    auto& row = by_country[observation.country];
    row.country = observation.country;
    ++row.total;
    if (observation.hijacked) ++row.hijacked;

    auto& group = by_server[observation.dns_server.value()];
    group.nodes.push_back(&observation);
    group.countries.insert(observation.country);
    if (observation.hijacked) ++group.hijacked;
  }
  report.unique_countries = countries.size();
  report.unique_ases = ases.size();
  report.unique_dns_servers = servers.size();

  // §4.2 macroscopic spread at the AS level.
  {
    std::map<net::Asn, std::pair<std::size_t, std::size_t>> by_as;  // hijacked, total
    for (const auto& observation : observations) {
      if (observation.filtered_google_overlap) continue;
      auto& entry = by_as[observation.asn];
      ++entry.second;
      if (observation.hijacked) ++entry.first;
    }
    for (const auto& [asn, counts] : by_as) {
      if (counts.second < config.min_nodes_per_server) continue;
      ++report.sampled_ases;
      if (counts.first == 0) ++report.clean_ases;
      if (counts.first * 3 > counts.second) ++report.heavily_hijacked_ases;
    }
  }

  // Table 3: countries with enough samples, ranked by hijack ratio.
  for (const auto& [code, row] : by_country) {
    if (row.total >= config.min_nodes_per_country) {
      ++report.sampled_countries;
      if (row.hijacked == 0) ++report.clean_countries;
      report.top_countries.push_back(row);
    }
  }
  std::sort(report.top_countries.begin(), report.top_countries.end(),
            [](const DnsCountryRow& a, const DnsCountryRow& b) {
              return a.ratio() > b.ratio();
            });

  // Classify each DNS server (§4.3).
  std::map<std::string, DnsIspRow> isp_rows;       // keyed "isp|country"
  std::map<std::string, DnsPublicRow> public_rows;
  std::size_t attributed_isp = 0, attributed_public = 0, attributed_other = 0;

  for (const auto& [server_value, group] : by_server) {
    const net::Ipv4Address server(server_value);
    const bool is_google = world.is_google_egress(server);
    const net::Organization* server_org = world.topology.organization_of(server);

    // Per-node attribution for the §4.4 split (no reporting threshold).
    std::size_t same_org_nodes = 0;
    for (const auto* node : group.nodes) {
      const net::Organization* node_org =
          world.topology.organization_of(node->exit_address);
      if (server_org != nullptr && node_org != nullptr &&
          server_org->id == node_org->id) {
        ++same_org_nodes;
      }
    }
    const bool looks_isp =
        !is_google && server_org != nullptr &&
        same_org_nodes * 5 >= group.nodes.size() * 4;  // >=80% same-org users
    for (const auto* node : group.nodes) {
      if (!node->hijacked) continue;
      if (is_google) {
        ++attributed_other;
      } else if (looks_isp) {
        ++attributed_isp;
      } else {
        ++attributed_public;
      }
    }

    if (group.nodes.size() < config.min_nodes_per_server || is_google) continue;

    if (looks_isp && same_org_nodes == group.nodes.size()) {
      ++report.isp_server_total;
      if (group.hijack_rate() >= config.hijack_rate_threshold) {
        auto& row = isp_rows[server_org->name + '|' + server_org->country];
        row.isp = server_org->name;
        row.country = server_org->country;
        ++row.dns_servers;
        row.nodes += group.nodes.size();
      }
    } else if (group.countries.size() > config.public_country_threshold) {
      ++report.public_server_total;
      if (group.hijack_rate() >= config.hijack_rate_threshold) {
        const std::string name =
            server_org != nullptr ? server_org->name : "(unidentified)";
        auto& row = public_rows[name];
        row.operator_name = name;
        ++row.servers;
        row.nodes += group.nodes.size();
      }
    }
  }

  for (auto& [key, row] : isp_rows) report.isp_hijackers.push_back(row);
  std::sort(report.isp_hijackers.begin(), report.isp_hijackers.end(),
            [](const DnsIspRow& a, const DnsIspRow& b) {
              return std::tie(a.country, a.isp) < std::tie(b.country, b.isp);
            });
  for (auto& [key, row] : public_rows) report.public_hijackers.push_back(row);
  std::sort(report.public_hijackers.begin(), report.public_hijackers.end(),
            [](const DnsPublicRow& a, const DnsPublicRow& b) {
              return a.nodes > b.nodes;
            });

  if (report.hijacked_nodes > 0) {
    const double total = static_cast<double>(report.hijacked_nodes);
    report.attributed_isp = attributed_isp / total;
    report.attributed_public = attributed_public / total;
    report.attributed_other = attributed_other / total;
  }

  // Table 5: nodes hijacked despite using Google's resolver — cluster the
  // landing-page URLs.
  struct UrlGroup {
    std::size_t nodes = 0;
    std::set<net::Asn> ases;
    std::set<net::CountryCode> countries;
  };
  std::map<std::string, UrlGroup> url_groups;
  for (const auto& observation : observations) {
    if (observation.filtered_google_overlap || !observation.hijacked) continue;
    if (!world.is_google_egress(observation.dns_server)) continue;
    ++report.google_hijacked_nodes;
    report.evidence["google_hijacked"].push_back(observation.txn_id);
    for (const auto& host : http::extract_url_hosts(observation.hijack_content)) {
      auto& group = url_groups[host];
      ++group.nodes;
      group.ases.insert(observation.asn);
      group.countries.insert(observation.country);
    }
  }
  for (const auto& [host, group] : url_groups) {
    if (group.nodes < config.min_nodes_per_url) continue;
    DnsGoogleUrlRow row;
    row.host = host;
    row.nodes = group.nodes;
    row.ases = group.ases.size();
    row.countries = group.countries.size();
    row.likely_host_software = group.ases.size() >= config.host_software_as_threshold &&
                               group.countries.size() >= 2;
    report.google_urls.push_back(row);
  }
  std::sort(report.google_urls.begin(), report.google_urls.end(),
            [](const DnsGoogleUrlRow& a, const DnsGoogleUrlRow& b) {
              return a.nodes > b.nodes;
            });

  // §4.3.1: cluster hijack pages by URL-stripped code shape. Clusters that
  // span several ISPs indicate a common vendor appliance (the paper's
  // Cox / Oi / TalkTalk / BT / Verizon finding).
  struct ShapeGroup {
    std::set<std::string> isps;
    std::size_t nodes = 0;
  };
  std::map<std::uint64_t, ShapeGroup> shapes;
  for (const auto& observation : observations) {
    if (!observation.hijacked || observation.hijack_content.empty()) continue;
    const net::Organization* server_org =
        world.topology.organization_of(observation.dns_server);
    const net::Organization* org =
        server_org != nullptr ? server_org
                              : world.topology.organization_of(observation.exit_address);
    if (org == nullptr) continue;
    auto& group = shapes[content_shape_hash(observation.hijack_content)];
    group.isps.insert(org->name);
    ++group.nodes;
  }
  for (const auto& [hash, group] : shapes) {
    if (group.isps.size() < 2) continue;
    SharedVendorCluster cluster;
    cluster.isps.assign(group.isps.begin(), group.isps.end());
    cluster.nodes = group.nodes;
    cluster.shape_hash = hash;
    report.shared_vendor_clusters.push_back(std::move(cluster));
  }
  std::sort(report.shared_vendor_clusters.begin(), report.shared_vendor_clusters.end(),
            [](const SharedVendorCluster& a, const SharedVendorCluster& b) {
              return a.isps.size() > b.isps.size();
            });

  return report;
}

}  // namespace tft::core
