// Deterministic observability for the study pipeline.
//
// A Registry holds labeled monotonic counters, gauges, fixed-bucket
// histograms, and a span tree recording study → experiment → phase → shard
// nesting. Spans carry **two clocks**: deterministic sim-time (from
// tft::sim, byte-identical for every --jobs value) and wall-clock (steady
// clock, free to vary run to run).
//
// Determinism contract (carries over the thread-pool contract from
// util/thread_pool.hpp): everything emitted under the `counters`, `gauges`,
// `histograms`, and `spans` JSON sections must be byte-identical for any
// worker count. Wall-clock values — span wall times, pool busy time, queue
// depth, the jobs setting itself — live only in the separate `timing`
// section, which is allowed to vary. To keep the contract:
//
//  * maps are std::map so iteration (and thus JSON field order) is sorted;
//  * histogram observations are integers, so sums are order-independent;
//  * a Registry is never shared across threads — each world/experiment owns
//    one, per-shard results are merged in shard order (see shards.hpp), and
//    per-experiment registries merge in fixed experiment order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tft/sim/event_queue.hpp"
#include "tft/sim/time.hpp"

namespace tft::util {
class JsonWriter;
}

namespace tft::obs {

/// Wall-clock microseconds since a process-local steady-clock epoch.
/// Relative (not UNIX) so all timing values in one run share one origin.
std::int64_t wall_now_micros();

/// Fixed-bucket histogram over int64 values. `upper_bounds` are inclusive
/// ("value <= bound" lands in that bucket); one extra overflow bucket
/// catches everything above the last bound. Integer sum keeps merges
/// order-independent.
struct Histogram {
  std::vector<std::int64_t> upper_bounds;  // ascending
  std::vector<std::uint64_t> buckets;      // upper_bounds.size() + 1
  std::uint64_t count = 0;
  std::int64_t sum = 0;

  void observe(std::int64_t value);
  /// Index of the bucket `value` falls in (last index = overflow).
  std::size_t bucket_index(std::int64_t value) const;

  /// Upper bound of the bucket holding the q-quantile observation
  /// (q in [0, 1]). Fixed buckets make this an over-estimate by at most one
  /// bucket width — the right direction for latency SLO checks. Overflow
  /// observations report the last finite bound; an empty histogram reports 0.
  std::int64_t quantile(double q) const;
};

/// One node in the span tree. `parent` indexes the owning Registry's span
/// vector (-1 = root). sim_* fields are deterministic; wall_* fields are
/// exported under `timing` only.
struct Span {
  std::string name;
  std::int64_t parent = -1;
  std::int64_t sim_begin_us = 0;
  std::int64_t sim_end_us = 0;
  std::int64_t wall_begin_us = 0;
  std::int64_t wall_end_us = 0;
};

class Registry {
 public:
  // --- counters (monotonic) ------------------------------------------------
  void add(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t counter(std::string_view name) const;

  // --- gauges (last/max value; merge takes the max) ------------------------
  void set_gauge(std::string_view name, std::int64_t value);
  void max_gauge(std::string_view name, std::int64_t value);
  std::int64_t gauge(std::string_view name) const;

  // --- histograms ----------------------------------------------------------
  /// Record `value` into the named histogram, creating it with
  /// `upper_bounds` on first use (later calls must pass the same bounds).
  void observe(std::string_view name, const std::vector<std::int64_t>& upper_bounds,
               std::int64_t value);
  const Histogram* histogram(std::string_view name) const;

  // --- timing (wall-clock; excluded from the deterministic sections) -------
  void set_timing(std::string_view name, std::int64_t value);
  void add_timing(std::string_view name, std::int64_t value);
  void max_timing(std::string_view name, std::int64_t value);

  // --- spans ---------------------------------------------------------------
  /// Open a span as a child of the currently open span (if any). Returns
  /// its index. Spans must be closed in LIFO order.
  std::size_t begin_span(std::string_view name, sim::Instant sim_now);
  void end_span(sim::Instant sim_now);
  /// Append an already-measured span as a child of the currently open span
  /// (used for per-shard spans recorded after a parallel pass, in shard
  /// order). Returns its index.
  std::size_t append_span(std::string_view name, std::int64_t sim_begin_us,
                          std::int64_t sim_end_us, std::int64_t wall_begin_us,
                          std::int64_t wall_end_us);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, std::int64_t>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }
  const std::map<std::string, std::int64_t>& timing() const noexcept {
    return timing_;
  }

  /// Fold another registry in: counters/histograms sum, gauges take the
  /// max, timings sum, spans append (parent links re-based; `other`'s roots
  /// become children of this registry's currently open span, if any). Call
  /// in a fixed order — merge order must not depend on scheduling.
  void merge_from(const Registry& other);

  /// Drop every counter, gauge, histogram, and timing whose name starts
  /// with `prefix`. Returns how many entries were removed. Lets tests
  /// compare registries across world geometries after erasing the values
  /// that legitimately describe the geometry itself (e.g. `world.shard.`).
  std::size_t erase_prefixed(std::string_view prefix);

  /// Emit the registry's sections into an *open* JSON object:
  /// counters/gauges/histograms/spans always, timing only when asked.
  void write_json(util::JsonWriter& json, bool include_timing) const;

  /// Human-readable multi-line summary (the --stats report section).
  std::string render_stats() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::int64_t> timing_;
  std::vector<Span> spans_;
  std::vector<std::size_t> open_;  // stack of indices into spans_
};

/// RAII wrapper for begin_span/end_span against a sim clock.
class ScopedSpan {
 public:
  ScopedSpan(Registry& registry, std::string_view name, const sim::EventQueue& clock)
      : registry_(registry), clock_(clock) {
    registry_.begin_span(name, clock_.now());
  }
  ~ScopedSpan() { registry_.end_span(clock_.now()); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Registry& registry_;
  const sim::EventQueue& clock_;
};

}  // namespace tft::obs
