// Certificate chain verification against a trusted root store — the
// "openssl verify" step of §6.1 (the paper verifies against the OS X 10.11
// root store; we verify against a configurable store).
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>

#include "tft/tls/certificate.hpp"

namespace tft::tls {

/// Set of trusted root certificates (keyed by fingerprint).
class RootStore {
 public:
  void add(const Certificate& root);
  bool trusts(const Certificate& certificate) const;
  std::size_t size() const noexcept { return fingerprints_.size(); }

  /// Whether any trusted root uses this key (for issuer-key checks).
  bool trusts_key(KeyId key) const;

 private:
  std::unordered_set<std::uint64_t> fingerprints_;
  std::unordered_set<KeyId> keys_;
};

enum class VerifyStatus {
  kOk,
  kEmptyChain,
  kExpired,
  kNotYetValid,
  kHostnameMismatch,
  kSelfSigned,        // leaf is self-signed and not in the store
  kBrokenChain,       // signature/issuer linkage failure
  kUntrustedRoot,     // chain is internally valid but anchors nowhere trusted
  kNotACa,            // an intermediate lacks the CA flag
};

std::string_view to_string(VerifyStatus status) noexcept;

struct VerifyResult {
  VerifyStatus status = VerifyStatus::kOk;
  std::string detail;

  bool ok() const noexcept { return status == VerifyStatus::kOk; }
};

class CertificateVerifier {
 public:
  explicit CertificateVerifier(const RootStore* roots) : roots_(roots) {}

  /// Verify `chain` (leaf first) for `host` at time `now`:
  /// validity windows, hostname binding on the leaf, CA flags on
  /// intermediates, signature linkage, and trust anchoring. The anchor may
  /// be the chain's last certificate or any trusted root whose key signed it.
  VerifyResult verify(const CertificateChain& chain, std::string_view host,
                      sim::Instant now) const;

 private:
  const RootStore* roots_;
};

}  // namespace tft::tls
