// Ablation (§2.3): Luminati retries failed exit nodes (up to 5) and reports
// the zID trail, and the d1/d2 methodology discards measurements whose two
// requests landed on different nodes. This bench sweeps node churn to show
// how the retry + zID-consistency design keeps measurements sound as the
// platform degrades.
#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.03);
  const auto base = tft::bench::study_config(options);

  std::cout << tft::stats::banner("Ablation: exit-node churn vs. DNS probe yield");
  tft::stats::Table table({"Failure prob.", "Sessions issued", "Nodes measured",
                           "Yield/session", "Hijack ratio"});
  for (const double failure : {0.0, 0.01, 0.05, 0.15, 0.30}) {
    auto spec = tft::world::paper_spec();
    spec.node_failure_probability = failure;
    auto world = tft::world::build_world(spec, options.scale, options.seed);
    tft::core::DnsHijackProbe probe(*world, base.dns);
    probe.run();
    const auto report =
        tft::core::analyze_dns(*world, probe.observations(), base.dns_analysis);
    const double yield =
        probe.sessions_issued() == 0
            ? 0
            : static_cast<double>(probe.observations().size()) /
                  static_cast<double>(probe.sessions_issued());
    table.add_row({tft::util::format_percent(failure, 0),
                   tft::util::format_count(probe.sessions_issued()),
                   tft::util::format_count(report.total_nodes),
                   tft::util::format_double(yield, 3),
                   tft::util::format_percent(report.hijack_ratio())});
  }
  std::cout << table.render() << "\n";
  std::cout << "Reading: the measured hijack ratio stays stable across churn\n"
               "levels — the zID-consistency check discards cross-node\n"
               "measurements instead of corrupting them — at the cost of\n"
               "extra sessions per measured node.\n";
  return 0;
}
