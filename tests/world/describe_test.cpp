#include "tft/world/describe.hpp"

#include <gtest/gtest.h>

namespace tft::world {
namespace {

class DescribeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = build_world(mini_spec(), 1.0, 2024).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* DescribeTest::world_ = nullptr;

TEST_F(DescribeTest, SummaryMatchesGroundTruthCounts) {
  const WorldSummary summary = summarize(*world_);
  EXPECT_EQ(summary.nodes, world_->luminati->node_count());
  EXPECT_EQ(summary.ases, world_->topology.as_count());
  EXPECT_EQ(summary.https_sites, world_->https_sites.size());

  const auto expect_count = [&](std::size_t actual, auto predicate) {
    EXPECT_EQ(actual, world_->truth.count(predicate));
  };
  expect_count(summary.dns_hijacked_isp, [](const NodeTruth& t) {
    return t.dns_hijack == DnsHijackSource::kIspResolver;
  });
  expect_count(summary.cert_replaced,
               [](const NodeTruth& t) { return !t.cert_replacer.empty(); });
  expect_count(summary.monitored,
               [](const NodeTruth& t) { return !t.monitor.empty(); });
  expect_count(summary.smtp_intercepted,
               [](const NodeTruth& t) { return !t.smtp_interceptor.empty(); });
  EXPECT_EQ(summary.dns_hijacked_total(),
            world_->truth.count([](const NodeTruth& t) {
              return t.dns_hijack != DnsHijackSource::kNone;
            }));
}

TEST_F(DescribeTest, SummaryCoversEveryConfiguredViolationClass) {
  const WorldSummary summary = summarize(*world_);
  EXPECT_GT(summary.dns_hijacked_isp, 0u);
  EXPECT_GT(summary.dns_hijacked_public, 0u);
  EXPECT_GT(summary.dns_hijacked_path, 0u);
  EXPECT_GT(summary.html_injected, 0u);
  EXPECT_GT(summary.image_transcoded, 0u);
  EXPECT_GT(summary.cert_replaced, 0u);
  EXPECT_GT(summary.monitored, 0u);
  EXPECT_GT(summary.smtp_intercepted, 0u);
}

TEST_F(DescribeTest, DescribeRendersEveryRow) {
  const std::string text = describe(*world_);
  EXPECT_NE(text.find("World inventory"), std::string::npos);
  EXPECT_NE(text.find("DNS hijack via ISP resolver"), std::string::npos);
  EXPECT_NE(text.find("Certificate replacement"), std::string::npos);
  EXPECT_NE(text.find("SMTP interception"), std::string::npos);
  EXPECT_NE(text.find("exit nodes"), std::string::npos);
}

TEST(DescribeEmptyTest, EmptyWorldIsSafe) {
  World world;
  const WorldSummary summary = summarize(world);
  EXPECT_EQ(summary.nodes, 0u);
  EXPECT_EQ(summary.dns_hijacked_total(), 0u);
  EXPECT_FALSE(describe(world).empty());
}

}  // namespace
}  // namespace tft::world
