// Bounds-checked binary readers/writers used by the DNS wire codec and the
// TLS certificate encoder. All multi-byte integers are big-endian (network
// byte order).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "tft/util/result.hpp"

namespace tft::util {

/// Append-only big-endian byte writer.
class ByteWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(static_cast<char>(value)); }
  void u16(std::uint16_t value) {
    u8(static_cast<std::uint8_t>(value >> 8));
    u8(static_cast<std::uint8_t>(value & 0xFF));
  }
  void u32(std::uint32_t value) {
    u16(static_cast<std::uint16_t>(value >> 16));
    u16(static_cast<std::uint16_t>(value & 0xFFFF));
  }
  void u64(std::uint64_t value) {
    u32(static_cast<std::uint32_t>(value >> 32));
    u32(static_cast<std::uint32_t>(value & 0xFFFFFFFF));
  }
  void bytes(std::string_view data) { buffer_.append(data); }

  /// Overwrite a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t value);

  std::size_t size() const noexcept { return buffer_.size(); }
  const std::string& data() const& noexcept { return buffer_; }
  std::string take() && { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked big-endian byte reader over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool at_end() const noexcept { return offset_ == data_.size(); }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::string_view> bytes(std::size_t count);

  /// Jump to an absolute offset (for DNS compression pointers).
  Result<void> seek(std::size_t offset);

 private:
  std::string_view data_;
  std::size_t offset_ = 0;
};

}  // namespace tft::util
