#include "tft/world/node_plan.hpp"

#include <algorithm>
#include <cassert>

#include "tft/util/hash.hpp"
#include "tft/util/stream_rng.hpp"

namespace tft::world {

const PlanRange& NodePlan::range_of(std::size_t index) const {
  assert(index < total_nodes);
  // Ranges are stored in ascending `begin` order (creation order).
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), index,
      [](std::size_t value, const PlanRange& range) { return value < range.begin; });
  assert(it != ranges.begin());
  return *(it - 1);
}

const NodeOverlay* NodePlan::overlay_of(std::size_t index) const {
  const auto it = overlays.find(static_cast<std::uint32_t>(index));
  return it == overlays.end() ? nullptr : &it->second;
}

std::string NodePlan::zid(std::size_t index) const {
  const PlanRange& range = range_of(index);
  const PlanIsp& isp = isps[range.isp];
  const std::uint32_t local = static_cast<std::uint32_t>(index) - range.begin;
  return util::stable_id("node|" + isp.name + "|" + isp.country + "|" +
                         std::to_string(local));
}

NodePlan::Facts NodePlan::facts(std::size_t index) const {
  const PlanRange& range = range_of(index);
  const PlanIsp& isp = isps[range.isp];
  const std::uint32_t local = static_cast<std::uint32_t>(index) - range.begin;

  Facts facts;
  facts.isp = range.isp;
  facts.country = isp.country;
  const std::size_t as_slot = local % isp.asns.size();
  facts.asn = isp.asns[as_slot];
  facts.address = *isp.prefixes[as_slot].host(
      range.base_host + local / static_cast<std::uint32_t>(isp.asns.size()));
  facts.zid = util::stable_id("node|" + isp.name + "|" + isp.country + "|" +
                              std::to_string(local));

  // The resolver pick replays create_nodes' draw exactly: same stream key,
  // same draw order, same fallbacks.
  if (range.force_isp_resolver || isp.resolver_ips.empty()) {
    if (!isp.resolver_ips.empty()) {
      facts.resolver = isp.resolver_ips[local % isp.resolver_ips.size()];
      facts.base_on_isp_resolver = true;
    } else {
      facts.resolver = net::Ipv4Address(8, 8, 8, 8);
      facts.base_uses_google = true;
    }
  } else {
    util::StreamRng stream(seed, util::fnv1a64(facts.zid), "resolver");
    const double roll = stream.uniform_double();
    if (roll < range.google_fraction) {
      facts.resolver = net::Ipv4Address(8, 8, 8, 8);
      facts.base_uses_google = true;
    } else if (roll < range.google_fraction + range.public_fraction &&
               !clean_public_resolvers.empty()) {
      facts.resolver =
          clean_public_resolvers[stream.index(clean_public_resolvers.size())];
    } else {
      facts.resolver = isp.resolver_ips[local % isp.resolver_ips.size()];
      facts.base_on_isp_resolver = true;
    }
  }
  facts.uses_google = facts.base_uses_google;

  if (const NodeOverlay* overlay = overlay_of(index)) {
    if (overlay->has_resolver) facts.resolver = overlay->resolver;
    if (overlay->uses_google >= 0) facts.uses_google = overlay->uses_google != 0;
  }
  return facts;
}

std::shared_ptr<middlebox::ImageTranscoder> NodePlan::transcoder_for(
    const Facts& facts, const PlanRange& range) const {
  if (range.transcoder == 0) return nullptr;
  const Transcoder& plan = transcoders[range.transcoder - 1];
  util::StreamRng stream(seed, util::fnv1a64(facts.zid), "transcode");
  if (!stream.chance(plan.fraction)) return nullptr;
  return plan.per_quality[stream.index(plan.per_quality.size())];
}

NodeTruth NodePlan::node_truth(std::size_t index) const {
  const PlanRange& range = range_of(index);
  const Facts f = facts(index);
  const NodeOverlay* overlay = overlay_of(index);

  NodeTruth truth;
  // DNS truth: an overlay override wins; otherwise the range-level decision
  // made at creation time (against creation-time resolver facts).
  if (overlay != nullptr && overlay->truth_dns_set) {
    truth.dns_hijack = overlay->truth_dns;
    truth.dns_hijack_operator = text(overlay->truth_dns_operator);
  } else if (range.hijack_source != DnsHijackSource::kNone &&
             !f.base_uses_google) {
    truth.dns_hijack = range.hijack_source;
    truth.dns_hijack_operator = text(range.hijack_operator);
  } else if (range.generic_hijack_probability > 0 && !f.base_uses_google &&
             f.base_on_isp_resolver &&
             proxy::stable_hijack_roll(f.zid) < range.generic_hijack_probability) {
    truth.dns_hijack = DnsHijackSource::kIspResolver;
    truth.dns_hijack_operator = text(range.generic_operator);
  }

  if (const auto transcoder = transcoder_for(f, range)) {
    truth.image_transcoder = std::string(transcoder->name());
  }
  if (overlay != nullptr) {
    truth.html_injector = text(overlay->truth_html_injector);
    truth.content_blocker = text(overlay->truth_content_blocker);
    truth.object_replacer = text(overlay->truth_object_replacer);
    truth.cert_replacer = text(overlay->truth_cert_replacer);
    truth.monitor = text(overlay->truth_monitor);
    truth.smtp_interceptor = text(overlay->truth_smtp);
    truth.smtp_interceptor_kind = text(overlay->truth_smtp_kind);
    truth.uses_vpn = overlay->uses_vpn;
  }
  return truth;
}

proxy::ExitNodeAgent::Config NodePlan::node_config(std::size_t index) const {
  const PlanRange& range = range_of(index);
  Facts f = facts(index);
  const NodeOverlay* overlay = overlay_of(index);

  proxy::ExitNodeAgent::Config config;
  config.address = f.address;
  config.asn = f.asn;
  config.country = f.country;
  config.dns_resolver = f.resolver;
  config.failure_probability = node_failure_probability;
  config.rng_seed = util::stream_seed(seed, util::fnv1a64(f.zid), "node");

  // Chain assembly mirrors the builder's phase order: appends in token
  // order with the transcoder spliced where assign_http_modifiers ran,
  // then monitor and VPN rewriter pushed to the front (VPN outermost).
  if (overlay != nullptr) {
    for (const std::uint32_t token : overlay->tokens) {
      if (plan_token_kind(token) == PlanTokenKind::kDnsShared) {
        config.dns_interceptors.push_back(dns_shared[plan_token_id(token)]);
      }
    }
    for (const std::uint32_t token : overlay->tokens) {
      if (plan_token_kind(token) == PlanTokenKind::kHttpPre) {
        config.http_interceptors.push_back(http_shared[plan_token_id(token)]);
      }
    }
  }
  if (const auto transcoder = transcoder_for(f, range)) {
    config.http_interceptors.push_back(transcoder);
  }
  if (overlay != nullptr) {
    for (const std::uint32_t token : overlay->tokens) {
      switch (plan_token_kind(token)) {
        case PlanTokenKind::kHttpPost:
          config.http_interceptors.push_back(http_shared[plan_token_id(token)]);
          break;
        case PlanTokenKind::kHttpInjectorConfig:
          config.http_interceptors.push_back(
              std::make_shared<middlebox::HtmlInjector>(
                  injector_configs[plan_token_id(token)]));
          break;
        case PlanTokenKind::kTlsConfig:
          config.tls_interceptors.push_back(
              std::make_shared<middlebox::CertReplacer>(
                  tls_configs[plan_token_id(token)],
                  util::fnv1a64("host|" + f.zid)));
          break;
        case PlanTokenKind::kSmtpShared:
          config.smtp_interceptors.push_back(smtp_shared[plan_token_id(token)]);
          break;
        default:
          break;
      }
    }
    if (overlay->monitor != 0) {
      config.http_interceptors.insert(config.http_interceptors.begin(),
                                      http_shared[overlay->monitor - 1]);
    }
    if (overlay->vpn != 0) {
      config.http_interceptors.insert(config.http_interceptors.begin(),
                                      http_shared[overlay->vpn - 1]);
    }
  }
  config.zid = std::move(f.zid);
  return config;
}

void NodePlan::seal() {
  country_runs_.clear();
  country_totals_.clear();
  for (std::uint32_t ri = 0; ri < ranges.size(); ++ri) {
    const PlanRange& range = ranges[ri];
    if (range.count == 0) continue;
    const net::CountryCode& country = isps[range.isp].country;
    auto& runs = country_runs_[country];
    auto& total = country_totals_[country];
    runs.push_back(CountryRun{ri, total});
    total += range.count;
  }
}

std::size_t NodePlan::country_count(const net::CountryCode& country) const {
  const auto it = country_totals_.find(country);
  return it == country_totals_.end() ? 0 : it->second;
}

std::size_t NodePlan::country_slot(const net::CountryCode& country,
                                   std::size_t slot) const {
  const auto it = country_runs_.find(country);
  assert(it != country_runs_.end());
  const auto& runs = it->second;
  // Last run whose nodes_before <= slot.
  const auto run = std::upper_bound(
      runs.begin(), runs.end(), slot,
      [](std::size_t value, const CountryRun& r) { return value < r.nodes_before; });
  assert(run != runs.begin());
  const CountryRun& hit = *(run - 1);
  return ranges[hit.range].begin + (slot - hit.nodes_before);
}

std::uint32_t NodePlan::intern(std::string_view text) {
  if (text.empty()) return 0;
  const auto [it, inserted] =
      intern_index_.emplace(std::string(text),
                            static_cast<std::uint32_t>(strings.size()));
  if (inserted) strings.emplace_back(text);
  return it->second;
}

}  // namespace tft::world
