// Wall-clock comparison of the study pipeline at --jobs 1 vs --jobs N,
// plus a byte-identity check on the rendered reports (the determinism
// contract: worker count never changes results), plus a memory scale sweep
// of materialized vs sharded (--shard-mem) worlds.
//
// Usage: perf_parallel_study [scale] [target_nodes] [seed] [jobs]
//
// The sweep re-execs this binary once per (scale, mode) leg so each leg's
// peak RSS (VmHWM) is measured in a fresh address space, with a bounded
// probe target so crawl bookkeeping stays flat while the world scales —
// what grows is exactly the node table (materialized) or the resident
// shard cache (sharded).
//
// Also drops BENCH_parallel_study.json at the repo root: wall times for
// both legs, speedup, the key observability counters of the run, and the
// per-scale memory sweep (VmHWM + world.shard.* gauges).
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "tft/obs/build_info.hpp"
#include "tft/util/json.hpp"
#include "tft/util/thread_pool.hpp"

#ifndef TFT_REPO_ROOT
#define TFT_REPO_ROOT "."
#endif

namespace {

std::string render_all(const tft::core::StudyResult& result) {
  std::string out = tft::core::render_coverage(result.coverage);
  out += "\n" + tft::core::render_dns_report(result.dns);
  out += "\n" + tft::core::render_http_report(result.http);
  out += "\n" + tft::core::render_https_report(result.https);
  out += "\n" + tft::core::render_monitor_report(result.monitoring);
  return out;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (const unsigned char c : text) {
    digest ^= c;
    digest *= 0x100000001b3ULL;
  }
  return digest;
}

long vm_hwm_kb() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) break;
  }
  std::fclose(file);
  return kb;
}

// --- sweep leg (child process) ----------------------------------------------

/// perf_parallel_study --leg <mat|shard> <scale> <target> <seed>
/// Runs one bounded study and prints a single machine-readable line:
///   hwm_kb ms hash nodes bytes_nodes capacity resident_peak peak_shard_bytes
int run_leg(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  if (argc < 6) {
    std::cerr << "--leg needs: <mat|shard> <scale> <target> <seed>\n";
    return 2;
  }
  const bool shard_mem = std::string_view(argv[2]) == "shard";
  const double scale = std::atof(argv[3]);
  const std::size_t target = static_cast<std::size_t>(std::atoll(argv[4]));
  const std::uint64_t seed = static_cast<std::uint64_t>(std::atoll(argv[5]));

  auto config = tft::core::StudyConfig::for_scale(scale, target);
  config.jobs = 1;  // single-threaded: no worker stacks in the RSS signal
  config.shard_mem = shard_mem;

  const auto start = Clock::now();
  const auto result =
      tft::core::run_study(tft::world::paper_spec(), scale, seed, config);
  const double ms =
      std::chrono::duration<double>(Clock::now() - start).count() * 1000.0;

  const std::uint64_t hash = fnv1a(render_all(result));
  std::printf("%ld %.1f %llu %lld %lld %lld %lld %lld\n", vm_hwm_kb(), ms,
              static_cast<unsigned long long>(hash),
              static_cast<long long>(result.metrics.gauge("world.nodes")),
              static_cast<long long>(result.metrics.gauge("world.bytes.nodes")),
              static_cast<long long>(
                  result.metrics.gauge("world.shard.capacity")),
              static_cast<long long>(
                  result.metrics.gauge("world.shard.resident_peak")),
              static_cast<long long>(
                  result.metrics.gauge("world.bytes.peak_shard")));
  return 0;
}

struct LegResult {
  bool ok = false;
  long hwm_kb = -1;
  double ms = 0;
  std::uint64_t hash = 0;
  long long nodes = 0;
  long long bytes_nodes = 0;
  long long capacity = 0;
  long long resident_peak = 0;
  long long peak_shard_bytes = 0;
};

/// Fork+exec one sweep leg in a fresh process and parse its result line.
LegResult spawn_leg(const char* self, const char* mode, double scale,
                    std::size_t target, std::uint64_t seed) {
  LegResult result;
  int fds[2];
  if (pipe(fds) != 0) return result;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return result;
  }
  if (pid == 0) {
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    close(fds[1]);
    char scale_arg[32], target_arg[32], seed_arg[32];
    std::snprintf(scale_arg, sizeof(scale_arg), "%g", scale);
    std::snprintf(target_arg, sizeof(target_arg), "%zu", target);
    std::snprintf(seed_arg, sizeof(seed_arg), "%llu",
                  static_cast<unsigned long long>(seed));
    execl(self, self, "--leg", mode, scale_arg, target_arg, seed_arg,
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(fds[1]);
  std::string out;
  char buffer[256];
  ssize_t got;
  while ((got = read(fds[0], buffer, sizeof(buffer))) > 0) {
    out.append(buffer, static_cast<std::size_t>(got));
  }
  close(fds[0]);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return result;
  }
  unsigned long long hash = 0;
  result.ok =
      std::sscanf(out.c_str(), "%ld %lf %llu %lld %lld %lld %lld %lld",
                  &result.hwm_kb, &result.ms, &hash, &result.nodes,
                  &result.bytes_nodes, &result.capacity, &result.resident_peak,
                  &result.peak_shard_bytes) == 8;
  result.hash = hash;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  if (argc > 1 && std::string_view(argv[1]) == "--leg") {
    return run_leg(argc, argv);
  }
  const auto options = tft::bench::parse_options(argc, argv, 0.05);
  std::size_t jobs = tft::util::ThreadPool::default_workers();
  if (argc > 4) jobs = static_cast<std::size_t>(std::atoll(argv[4]));
  if (jobs < 2) jobs = 2;  // "parallel" leg must actually be parallel

  const auto spec = tft::world::paper_spec();
  auto config = tft::bench::study_config(options);

  std::cerr << "[bench] sequential study (jobs=1)...\n";
  config.jobs = 1;
  const auto sequential_start = Clock::now();
  const auto sequential = tft::core::run_study(spec, options.scale,
                                               options.seed, config);
  const double sequential_seconds =
      std::chrono::duration<double>(Clock::now() - sequential_start).count();

  std::cerr << "[bench] parallel study (jobs=" << jobs << ")...\n";
  config.jobs = jobs;
  const auto parallel_start = Clock::now();
  const auto parallel = tft::core::run_study(spec, options.scale,
                                             options.seed, config);
  const double parallel_seconds =
      std::chrono::duration<double>(Clock::now() - parallel_start).count();

  const std::string sequential_report = render_all(sequential);
  const std::string parallel_report = render_all(parallel);

  std::cout << "perf_parallel_study: scale=" << options.scale
            << " target=" << options.target_nodes << " seed=" << options.seed
            << "\n";
  std::cout << "  hardware threads: "
            << tft::util::ThreadPool::default_workers() << "\n";
  std::cout << "  jobs=1: " << sequential_seconds << " s\n";
  std::cout << "  jobs=" << jobs << ": " << parallel_seconds << " s\n";
  std::cout << "  speedup: "
            << (parallel_seconds > 0 ? sequential_seconds / parallel_seconds
                                     : 0)
            << "x\n";
  std::cout << "  reports byte-identical: "
            << (sequential_report == parallel_report ? "yes" : "NO") << "\n";

  // Memory scale sweep: materialized vs sharded worlds, bounded crawl
  // (fixed probe target) so peak RSS tracks the world, not the probes.
  // Each leg runs in a re-exec'd child: VmHWM is monotonic per process.
  constexpr double kSweepScales[] = {0.05, 0.1, 0.25, 0.5, 1.0};
  constexpr std::size_t kSweepTarget = 2000;
  struct SweepRow {
    double scale;
    LegResult materialized;
    LegResult sharded;
  };
  std::vector<SweepRow> sweep;
  bool sweep_identical = true;
  for (const double scale : kSweepScales) {
    std::cerr << "[bench] memory sweep: scale=" << scale << "...\n";
    SweepRow row;
    row.scale = scale;
    row.materialized =
        spawn_leg("/proc/self/exe", "mat", scale, kSweepTarget, options.seed);
    row.sharded =
        spawn_leg("/proc/self/exe", "shard", scale, kSweepTarget, options.seed);
    if (row.materialized.ok && row.sharded.ok) {
      const double ratio =
          row.materialized.hwm_kb > 0
              ? static_cast<double>(row.sharded.hwm_kb) / row.materialized.hwm_kb
              : 0;
      std::cout << "  sweep scale=" << scale << ": nodes="
                << row.materialized.nodes << " materialized="
                << row.materialized.hwm_kb << "KB sharded="
                << row.sharded.hwm_kb << "KB (" << ratio * 100 << "%), reports "
                << (row.materialized.hash == row.sharded.hash ? "identical"
                                                              : "DIFFER")
                << "\n";
      if (row.materialized.hash != row.sharded.hash) sweep_identical = false;
    } else {
      std::cout << "  sweep scale=" << scale << ": leg failed (skipped)\n";
    }
    sweep.push_back(row);
  }

  // Machine-readable result file for trend tracking across commits.
  {
    tft::util::JsonWriter json;
    json.begin_object();
    tft::obs::write_build_info(json);
    json.field("bench", "parallel_study")
        .field("scale", options.scale)
        .field("target_nodes", static_cast<std::uint64_t>(options.target_nodes))
        .field("seed", options.seed)
        .field("jobs", static_cast<std::uint64_t>(jobs))
        .field("hardware_threads",
               static_cast<std::uint64_t>(tft::util::ThreadPool::default_workers()))
        .field("sequential_ms", sequential_seconds * 1000.0)
        .field("parallel_ms", parallel_seconds * 1000.0)
        .field("speedup",
               parallel_seconds > 0 ? sequential_seconds / parallel_seconds : 0)
        .field("reports_identical", sequential_report == parallel_report);
    json.begin_object("counters");
    for (const auto& [name, value] : parallel.metrics.counters()) {
      json.field(name, value);
    }
    json.end_object();
    // Load-balance profile of the parallel leg: wall ms per shard of every
    // sharded pass (keys are "<pass label>.<shard>"). A skewed profile
    // means one shard dominates the pass's critical path.
    json.begin_object("per_shard_ms");
    for (const auto& [name, value] : parallel.metrics.timing()) {
      constexpr std::string_view kPrefix = "shard_ms.";
      if (name.rfind(kPrefix, 0) == 0) {
        json.field(name.substr(kPrefix.size()), value);
      }
    }
    json.end_object();
    // The memory sweep: peak RSS (VmHWM, KB) of a bounded study per scale,
    // materialized vs --shard-mem, plus the residency-cache gauges.
    json.field("sweep_probe_target", static_cast<std::uint64_t>(kSweepTarget));
    json.begin_array("memory_sweep");
    for (const auto& row : sweep) {
      if (!row.materialized.ok || !row.sharded.ok) continue;
      json.begin_object()
          .field("scale", row.scale)
          .field("nodes", static_cast<std::int64_t>(row.materialized.nodes))
          .field("reports_identical",
                 row.materialized.hash == row.sharded.hash);
      json.begin_object("materialized")
          .field("vm_hwm_kb", static_cast<std::int64_t>(row.materialized.hwm_kb))
          .field("study_ms", row.materialized.ms)
          .field("world_bytes_nodes",
                 static_cast<std::int64_t>(row.materialized.bytes_nodes))
          .end_object();
      json.begin_object("sharded")
          .field("vm_hwm_kb", static_cast<std::int64_t>(row.sharded.hwm_kb))
          .field("study_ms", row.sharded.ms)
          .field("shard_capacity",
                 static_cast<std::int64_t>(row.sharded.capacity))
          .field("shard_resident_peak",
                 static_cast<std::int64_t>(row.sharded.resident_peak))
          .field("bytes_peak_shard",
                 static_cast<std::int64_t>(row.sharded.peak_shard_bytes))
          .end_object();
      json.field("rss_ratio",
                 row.materialized.hwm_kb > 0
                     ? static_cast<double>(row.sharded.hwm_kb) /
                           row.materialized.hwm_kb
                     : 0.0);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    const std::string path = std::string(TFT_REPO_ROOT) + "/BENCH_parallel_study.json";
    std::ofstream file(path);
    if (file) {
      file << std::move(json).take() << "\n";
      std::cerr << "[bench] results written to " << path << "\n";
    } else {
      std::cerr << "[bench] warning: cannot write " << path << "\n";
    }
  }

  if (sequential_report != parallel_report) {
    std::cerr << "perf_parallel_study: DETERMINISM VIOLATION — jobs=1 and "
                 "jobs="
              << jobs << " reports differ\n";
    return 1;
  }
  if (!sweep_identical) {
    std::cerr << "perf_parallel_study: DETERMINISM VIOLATION — materialized "
                 "and sharded sweep reports differ\n";
    return 1;
  }
  return 0;
}
