#include "tft/world/spec_io.hpp"

#include <functional>
#include <set>

#include "tft/util/json.hpp"
#include "tft/util/json_parse.hpp"

namespace tft::world {

using util::ErrorCode;
using util::JsonValue;
using util::JsonWriter;
using util::make_error;
using util::Result;

namespace {

// --- enum <-> string --------------------------------------------------------



Result<net::OrgKind> org_kind_from(std::string_view text) {
  for (const auto kind :
       {net::OrgKind::kBroadbandIsp, net::OrgKind::kMobileIsp, net::OrgKind::kHosting,
        net::OrgKind::kPublicDnsOperator, net::OrgKind::kSecurityVendor,
        net::OrgKind::kVpnProvider, net::OrgKind::kAcademic, net::OrgKind::kOther}) {
    if (text == net::to_string(kind)) return kind;
  }
  return make_error(ErrorCode::kParseError, "unknown org kind: " + std::string(text));
}

std::string_view to_string(CertReplacerSpec::Kind kind) {
  switch (kind) {
    case CertReplacerSpec::Kind::kAntiVirus:
      return "anti_virus";
    case CertReplacerSpec::Kind::kContentFilter:
      return "content_filter";
    case CertReplacerSpec::Kind::kMalware:
      return "malware";
    case CertReplacerSpec::Kind::kUnknown:
      return "unknown";
  }
  return "unknown";
}

Result<CertReplacerSpec::Kind> cert_kind_from(std::string_view text) {
  for (const auto kind :
       {CertReplacerSpec::Kind::kAntiVirus, CertReplacerSpec::Kind::kContentFilter,
        CertReplacerSpec::Kind::kMalware, CertReplacerSpec::Kind::kUnknown}) {
    if (text == to_string(kind)) return kind;
  }
  return make_error(ErrorCode::kParseError,
                    "unknown cert replacer kind: " + std::string(text));
}

std::string_view to_string(MonitorSpec::Kind kind) {
  switch (kind) {
    case MonitorSpec::Kind::kHostSoftware:
      return "host_software";
    case MonitorSpec::Kind::kIspService:
      return "isp_service";
    case MonitorSpec::Kind::kVpn:
      return "vpn";
    case MonitorSpec::Kind::kPathMiddlebox:
      return "path_middlebox";
  }
  return "host_software";
}

Result<MonitorSpec::Kind> monitor_kind_from(std::string_view text) {
  for (const auto kind :
       {MonitorSpec::Kind::kHostSoftware, MonitorSpec::Kind::kIspService,
        MonitorSpec::Kind::kVpn, MonitorSpec::Kind::kPathMiddlebox}) {
    if (text == to_string(kind)) return kind;
  }
  return make_error(ErrorCode::kParseError, "unknown monitor kind: " + std::string(text));
}

Result<SmtpInterceptSpec::Kind> smtp_kind_from(std::string_view text) {
  for (const auto kind :
       {SmtpInterceptSpec::Kind::kStripStarttls, SmtpInterceptSpec::Kind::kBlockPort,
        SmtpInterceptSpec::Kind::kRewriteBanner, SmtpInterceptSpec::Kind::kTagBody}) {
    if (text == to_string(kind)) return kind;
  }
  return make_error(ErrorCode::kParseError,
                    "unknown smtp intercept kind: " + std::string(text));
}

// --- field helpers -----------------------------------------------------------

/// Tracks which keys of an object were consumed; unknown leftovers error.
class FieldReader {
 public:
  FieldReader(const JsonValue& value, std::string scope)
      : value_(value), scope_(std::move(scope)) {}

  const JsonValue& take(std::string_view key) {
    consumed_.insert(std::string(key));
    return value_[key];
  }

  Result<void> finish() const {
    for (const auto& [key, member] : value_.as_object()) {
      if (!consumed_.contains(key)) {
        return make_error(ErrorCode::kParseError,
                          "unknown field '" + key + "' in " + scope_);
      }
    }
    return {};
  }

 private:
  const JsonValue& value_;
  std::string scope_;
  std::set<std::string> consumed_;
};

int int_or(const JsonValue& value, int fallback) {
  return value.is_number() ? static_cast<int>(value.as_int()) : fallback;
}
double number_or(const JsonValue& value, double fallback) {
  return value.is_number() ? value.as_number() : fallback;
}
std::string string_or(const JsonValue& value, std::string fallback) {
  return value.is_string() ? value.as_string() : fallback;
}
bool bool_or(const JsonValue& value, bool fallback) {
  return value.is_bool() ? value.as_bool() : fallback;
}

}  // namespace

std::string spec_to_json(const WorldSpec& spec) {
  JsonWriter json;
  json.begin_object();

  json.begin_array("countries");
  for (const auto& country : spec.countries) {
    json.begin_object()
        .field("code", country.code)
        .field("total_nodes", country.total_nodes)
        .field("extra_hijacked_nodes", country.extra_hijacked_nodes)
        .field("isp_count", country.isp_count)
        .field("ases_per_isp", country.ases_per_isp)
        .field("google_dns_fraction", country.google_dns_fraction)
        .field("public_dns_fraction", country.public_dns_fraction)
        .end_object();
  }
  json.end_array();

  json.begin_array("named_isps");
  for (const auto& isp : spec.named_isps) {
    json.begin_object()
        .field("name", isp.name)
        .field("country", isp.country)
        .field("as_count", isp.as_count)
        .field("nodes", isp.nodes)
        .field("kind", net::to_string(isp.kind))
        .end_object();
  }
  json.end_array();

  json.begin_array("isp_resolver_hijackers");
  for (const auto& isp : spec.isp_resolver_hijackers) {
    json.begin_object()
        .field("isp", isp.isp)
        .field("country", isp.country)
        .field("dns_servers", isp.dns_servers)
        .field("nodes", isp.nodes)
        .field("landing_host", isp.landing_host)
        .field("shared_vendor_js", isp.shared_vendor_js)
        .end_object();
  }
  json.end_array();

  json.begin_array("path_hijackers");
  for (const auto& entry : spec.path_hijackers) {
    json.begin_object()
        .field("isp", entry.isp)
        .field("country", entry.country)
        .field("google_dns_nodes", entry.google_dns_nodes)
        .field("landing_host", entry.landing_host)
        .field("as_spread", entry.as_spread)
        .end_object();
  }
  json.end_array();

  json.begin_array("host_dns_hijackers");
  for (const auto& entry : spec.host_dns_hijackers) {
    json.begin_object()
        .field("product", entry.product)
        .field("landing_host", entry.landing_host)
        .field("nodes", entry.nodes)
        .field("as_spread", entry.as_spread)
        .field("country_spread", entry.country_spread)
        .end_object();
  }
  json.end_array();

  json.begin_array("public_resolver_hijackers");
  for (const auto& entry : spec.public_resolver_hijackers) {
    json.begin_object()
        .field("operator", entry.operator_name)
        .field("servers", entry.servers)
        .field("nodes", entry.nodes)
        .field("landing_host", entry.landing_host)
        .field("identifiable", entry.identifiable)
        .end_object();
  }
  json.end_array();

  json.field("scattered_google_hijack_nodes", spec.scattered_google_hijack_nodes);
  json.field("clean_public_resolvers", spec.clean_public_resolvers);

  json.begin_array("adware");
  for (const auto& entry : spec.adware) {
    json.begin_object()
        .field("name", entry.name)
        .field("snippet", entry.snippet)
        .field("nodes", entry.nodes)
        .field("as_spread", entry.as_spread)
        .field("country_spread", entry.country_spread)
        .end_object();
  }
  json.end_array();
  json.field("adware_install_boost", spec.adware_install_boost);

  json.begin_array("isp_filters");
  for (const auto& entry : spec.isp_filters) {
    json.begin_object()
        .field("isp", entry.isp)
        .field("country", entry.country)
        .field("asn", static_cast<std::uint64_t>(entry.asn))
        .field("nodes", entry.nodes)
        .field("snippet", entry.snippet)
        .end_object();
  }
  json.end_array();

  json.begin_array("transcoders");
  for (const auto& entry : spec.transcoders) {
    json.begin_object()
        .field("asn", static_cast<std::uint64_t>(entry.asn))
        .field("isp", entry.isp)
        .field("country", entry.country)
        .field("nodes", entry.nodes)
        .field("fraction", entry.fraction);
    json.begin_array("qualities");
    for (const int quality : entry.qualities) {
      json.value(static_cast<std::int64_t>(quality));
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  json.field("blockpage_nodes", spec.blockpage_nodes);
  json.field("js_error_nodes", spec.js_error_nodes);
  json.field("css_error_nodes", spec.css_error_nodes);

  json.begin_array("cert_replacers");
  for (const auto& entry : spec.cert_replacers) {
    json.begin_object()
        .field("product", entry.product)
        .field("issuer_cn", entry.issuer_cn)
        .field("kind", to_string(entry.kind))
        .field("nodes", entry.nodes)
        .field("reuse_public_key", entry.reuse_public_key)
        .field("untrusted_issuer_for_invalid", entry.untrusted_issuer_for_invalid)
        .field("only_if_upstream_valid", entry.only_if_upstream_valid)
        .field("only_blocked_hosts", entry.only_blocked_hosts)
        .field("also_injects_html", entry.also_injects_html);
    if (entry.only_country) json.field("only_country", *entry.only_country);
    json.end_object();
  }
  json.end_array();

  json.begin_array("monitors");
  for (const auto& entry : spec.monitors) {
    json.begin_object()
        .field("entity", entry.entity)
        .field("kind", to_string(entry.kind))
        .field("home_country", entry.home_country)
        .field("source_ips", entry.source_ips)
        .field("nodes", entry.nodes)
        .field("isp_node_fraction", entry.isp_node_fraction)
        .field("isp", entry.isp)
        .field("as_spread", entry.as_spread)
        .field("country_spread", entry.country_spread);
    json.begin_array("refetches");
    for (const auto& refetch : entry.refetches) {
      json.begin_object()
          .field("min_delay_s", refetch.min_delay_s)
          .field("max_delay_s", refetch.max_delay_s)
          .field("prefetch_probability", refetch.prefetch_probability)
          .field("hold_s", refetch.hold_s)
          .field("fixed_source_last", refetch.fixed_source_last)
          .end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.field("tail_monitor_groups", spec.tail_monitor_groups);
  json.field("tail_monitor_nodes", spec.tail_monitor_nodes);

  json.field("probe_html_bytes", spec.probe_html_bytes);
  json.begin_object("https")
      .field("popular_sites_per_country", spec.https.popular_sites_per_country)
      .field("countries_with_rankings", spec.https.countries_with_rankings);
  json.begin_array("universities");
  for (const auto& university : spec.https.universities) json.value(university);
  json.end_array();
  json.end_object();

  json.begin_array("smtp_interceptors");
  for (const auto& entry : spec.smtp_interceptors) {
    json.begin_object()
        .field("name", entry.name)
        .field("kind", world::to_string(entry.kind))
        .field("nodes", entry.nodes)
        .field("as_spread", entry.as_spread)
        .field("country_spread", entry.country_spread)
        .end_object();
  }
  json.end_array();

  json.field("arbitrary_port_overlay", spec.arbitrary_port_overlay);
  json.field("google_anycast_instances", spec.google_anycast_instances);
  json.field("node_failure_probability", spec.node_failure_probability);
  json.end_object();
  return std::move(json).take();
}

Result<WorldSpec> spec_from_json(std::string_view text) {
  auto document = util::parse_json(text);
  if (!document) return document.error();
  if (!document->is_object()) {
    return make_error(ErrorCode::kParseError, "scenario must be a JSON object");
  }

  WorldSpec spec;
  // Clear the defaults that paper_spec-independent scenarios usually
  // override wholesale; scalars keep WorldSpec{} defaults.
  FieldReader root(*document, "scenario");

  for (const auto& entry : root.take("countries").as_array()) {
    FieldReader reader(entry, "country");
    CountrySpec country;
    country.code = string_or(reader.take("code"), "");
    country.total_nodes = int_or(reader.take("total_nodes"), 0);
    country.extra_hijacked_nodes = int_or(reader.take("extra_hijacked_nodes"), 0);
    country.isp_count = int_or(reader.take("isp_count"), country.isp_count);
    country.ases_per_isp = int_or(reader.take("ases_per_isp"), country.ases_per_isp);
    country.google_dns_fraction =
        number_or(reader.take("google_dns_fraction"), country.google_dns_fraction);
    country.public_dns_fraction =
        number_or(reader.take("public_dns_fraction"), country.public_dns_fraction);
    if (auto ok = reader.finish(); !ok) return ok.error();
    if (country.code.empty()) {
      return make_error(ErrorCode::kParseError, "country without code");
    }
    spec.countries.push_back(std::move(country));
  }

  for (const auto& entry : root.take("named_isps").as_array()) {
    FieldReader reader(entry, "named_isp");
    NamedIspSpec isp;
    isp.name = string_or(reader.take("name"), "");
    isp.country = string_or(reader.take("country"), "");
    isp.as_count = int_or(reader.take("as_count"), isp.as_count);
    isp.nodes = int_or(reader.take("nodes"), 0);
    auto kind = org_kind_from(string_or(reader.take("kind"), "broadband_isp"));
    if (!kind) return kind.error();
    isp.kind = *kind;
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.named_isps.push_back(std::move(isp));
  }

  for (const auto& entry : root.take("isp_resolver_hijackers").as_array()) {
    FieldReader reader(entry, "isp_resolver_hijacker");
    IspResolverHijackSpec isp;
    isp.isp = string_or(reader.take("isp"), "");
    isp.country = string_or(reader.take("country"), "");
    isp.dns_servers = int_or(reader.take("dns_servers"), 1);
    isp.nodes = int_or(reader.take("nodes"), 0);
    isp.landing_host = string_or(reader.take("landing_host"), "");
    isp.shared_vendor_js = bool_or(reader.take("shared_vendor_js"), false);
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.isp_resolver_hijackers.push_back(std::move(isp));
  }

  for (const auto& entry : root.take("path_hijackers").as_array()) {
    FieldReader reader(entry, "path_hijacker");
    PathHijackSpec path;
    path.isp = string_or(reader.take("isp"), "");
    path.country = string_or(reader.take("country"), "");
    path.google_dns_nodes = int_or(reader.take("google_dns_nodes"), 0);
    path.landing_host = string_or(reader.take("landing_host"), "");
    path.as_spread = int_or(reader.take("as_spread"), 1);
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.path_hijackers.push_back(std::move(path));
  }

  for (const auto& entry : root.take("host_dns_hijackers").as_array()) {
    FieldReader reader(entry, "host_dns_hijacker");
    HostDnsHijackSpec host;
    host.product = string_or(reader.take("product"), "");
    host.landing_host = string_or(reader.take("landing_host"), "");
    host.nodes = int_or(reader.take("nodes"), 0);
    host.as_spread = int_or(reader.take("as_spread"), 1);
    host.country_spread = int_or(reader.take("country_spread"), 1);
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.host_dns_hijackers.push_back(std::move(host));
  }

  for (const auto& entry : root.take("public_resolver_hijackers").as_array()) {
    FieldReader reader(entry, "public_resolver_hijacker");
    PublicResolverHijackSpec service;
    service.operator_name = string_or(reader.take("operator"), "");
    service.servers = int_or(reader.take("servers"), 1);
    service.nodes = int_or(reader.take("nodes"), 0);
    service.landing_host = string_or(reader.take("landing_host"), "");
    service.identifiable = bool_or(reader.take("identifiable"), true);
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.public_resolver_hijackers.push_back(std::move(service));
  }

  spec.scattered_google_hijack_nodes =
      int_or(root.take("scattered_google_hijack_nodes"),
             spec.scattered_google_hijack_nodes);
  spec.clean_public_resolvers =
      int_or(root.take("clean_public_resolvers"), spec.clean_public_resolvers);

  for (const auto& entry : root.take("adware").as_array()) {
    FieldReader reader(entry, "adware");
    AdwareSpec adware;
    adware.name = string_or(reader.take("name"), "");
    adware.snippet = string_or(reader.take("snippet"), "");
    adware.nodes = int_or(reader.take("nodes"), 0);
    adware.as_spread = int_or(reader.take("as_spread"), 1);
    adware.country_spread = int_or(reader.take("country_spread"), 1);
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.adware.push_back(std::move(adware));
  }
  spec.adware_install_boost =
      number_or(root.take("adware_install_boost"), spec.adware_install_boost);

  for (const auto& entry : root.take("isp_filters").as_array()) {
    FieldReader reader(entry, "isp_filter");
    IspFilterSpec filter;
    filter.isp = string_or(reader.take("isp"), "");
    filter.country = string_or(reader.take("country"), "");
    filter.asn = static_cast<net::Asn>(reader.take("asn").as_int(0));
    filter.nodes = int_or(reader.take("nodes"), 0);
    filter.snippet = string_or(reader.take("snippet"), "");
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.isp_filters.push_back(std::move(filter));
  }

  for (const auto& entry : root.take("transcoders").as_array()) {
    FieldReader reader(entry, "transcoder");
    TranscoderSpec transcoder;
    transcoder.asn = static_cast<net::Asn>(reader.take("asn").as_int(0));
    transcoder.isp = string_or(reader.take("isp"), "");
    transcoder.country = string_or(reader.take("country"), "");
    transcoder.nodes = int_or(reader.take("nodes"), 0);
    transcoder.fraction = number_or(reader.take("fraction"), 1.0);
    for (const auto& quality : reader.take("qualities").as_array()) {
      transcoder.qualities.push_back(static_cast<int>(quality.as_int()));
    }
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.transcoders.push_back(std::move(transcoder));
  }

  spec.blockpage_nodes = int_or(root.take("blockpage_nodes"), spec.blockpage_nodes);
  spec.js_error_nodes = int_or(root.take("js_error_nodes"), spec.js_error_nodes);
  spec.css_error_nodes = int_or(root.take("css_error_nodes"), spec.css_error_nodes);

  for (const auto& entry : root.take("cert_replacers").as_array()) {
    FieldReader reader(entry, "cert_replacer");
    CertReplacerSpec product;
    product.product = string_or(reader.take("product"), "");
    product.issuer_cn = string_or(reader.take("issuer_cn"), "");
    auto kind = cert_kind_from(string_or(reader.take("kind"), "anti_virus"));
    if (!kind) return kind.error();
    product.kind = *kind;
    product.nodes = int_or(reader.take("nodes"), 0);
    product.reuse_public_key = bool_or(reader.take("reuse_public_key"), true);
    product.untrusted_issuer_for_invalid =
        bool_or(reader.take("untrusted_issuer_for_invalid"), false);
    product.only_if_upstream_valid =
        bool_or(reader.take("only_if_upstream_valid"), false);
    product.only_blocked_hosts = bool_or(reader.take("only_blocked_hosts"), false);
    product.also_injects_html = bool_or(reader.take("also_injects_html"), false);
    const auto& only_country = reader.take("only_country");
    if (only_country.is_string()) product.only_country = only_country.as_string();
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.cert_replacers.push_back(std::move(product));
  }

  for (const auto& entry : root.take("monitors").as_array()) {
    FieldReader reader(entry, "monitor");
    MonitorSpec monitor;
    monitor.entity = string_or(reader.take("entity"), "");
    auto kind = monitor_kind_from(string_or(reader.take("kind"), "host_software"));
    if (!kind) return kind.error();
    monitor.kind = *kind;
    monitor.home_country = string_or(reader.take("home_country"), "US");
    monitor.source_ips = int_or(reader.take("source_ips"), 1);
    monitor.nodes = int_or(reader.take("nodes"), 0);
    monitor.isp_node_fraction = number_or(reader.take("isp_node_fraction"), 0);
    monitor.isp = string_or(reader.take("isp"), "");
    monitor.as_spread = int_or(reader.take("as_spread"), 1);
    monitor.country_spread = int_or(reader.take("country_spread"), 1);
    for (const auto& refetch_value : reader.take("refetches").as_array()) {
      FieldReader refetch_reader(refetch_value, "refetch");
      MonitorSpec::Refetch refetch;
      refetch.min_delay_s = number_or(refetch_reader.take("min_delay_s"), 1);
      refetch.max_delay_s = number_or(refetch_reader.take("max_delay_s"), 60);
      refetch.prefetch_probability =
          number_or(refetch_reader.take("prefetch_probability"), 0);
      refetch.hold_s = number_or(refetch_reader.take("hold_s"), 0.5);
      refetch.fixed_source_last =
          bool_or(refetch_reader.take("fixed_source_last"), false);
      if (auto ok = refetch_reader.finish(); !ok) return ok.error();
      monitor.refetches.push_back(refetch);
    }
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.monitors.push_back(std::move(monitor));
  }
  spec.tail_monitor_groups =
      int_or(root.take("tail_monitor_groups"), spec.tail_monitor_groups);
  spec.tail_monitor_nodes =
      int_or(root.take("tail_monitor_nodes"), spec.tail_monitor_nodes);

  {
    const auto& bytes = root.take("probe_html_bytes");
    if (bytes.is_number()) {
      spec.probe_html_bytes = static_cast<std::size_t>(bytes.as_int());
    }
  }

  {
    const auto& https = root.take("https");
    if (https.is_object()) {
      FieldReader reader(https, "https");
      spec.https.popular_sites_per_country =
          int_or(reader.take("popular_sites_per_country"),
                 spec.https.popular_sites_per_country);
      spec.https.countries_with_rankings =
          int_or(reader.take("countries_with_rankings"),
                 spec.https.countries_with_rankings);
      const auto& universities = reader.take("universities");
      if (universities.is_array()) {
        spec.https.universities.clear();
        for (const auto& university : universities.as_array()) {
          spec.https.universities.push_back(university.as_string());
        }
      }
      if (auto ok = reader.finish(); !ok) return ok.error();
    }
  }

  for (const auto& entry : root.take("smtp_interceptors").as_array()) {
    FieldReader reader(entry, "smtp_interceptor");
    SmtpInterceptSpec intercept;
    intercept.name = string_or(reader.take("name"), "");
    auto kind = smtp_kind_from(string_or(reader.take("kind"), "strip_starttls"));
    if (!kind) return kind.error();
    intercept.kind = *kind;
    intercept.nodes = int_or(reader.take("nodes"), 0);
    intercept.as_spread = int_or(reader.take("as_spread"), 1);
    intercept.country_spread = int_or(reader.take("country_spread"), 1);
    if (auto ok = reader.finish(); !ok) return ok.error();
    spec.smtp_interceptors.push_back(std::move(intercept));
  }

  spec.arbitrary_port_overlay =
      bool_or(root.take("arbitrary_port_overlay"), spec.arbitrary_port_overlay);
  spec.google_anycast_instances =
      int_or(root.take("google_anycast_instances"), spec.google_anycast_instances);
  spec.node_failure_probability = number_or(root.take("node_failure_probability"),
                                            spec.node_failure_probability);

  if (auto ok = root.finish(); !ok) return ok.error();
  return spec;
}

}  // namespace tft::world
