// Property tests for the shard-merge algebra behind memory-bounded studies:
// partial accumulators built over disjoint shards and folded in fixed shard
// order must equal the single-pass result exactly — not approximately — for
// every partition geometry. This is the invariant that lets run_study
// aggregate observations without ever holding the whole world.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "tft/core/monitor_probe.hpp"
#include "tft/core/report_json.hpp"
#include "tft/net/ipv4.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/obs/trace_codec.hpp"
#include "tft/stats/cdf.hpp"
#include "tft/util/rng.hpp"
#include "tft/world/spec.hpp"
#include "tft/world/world.hpp"

namespace tft {
namespace {

using util::Rng;

const std::size_t kGeometries[] = {1, 2, 3, 7, 16, 64};

// --- EmpiricalCdf ------------------------------------------------------------

std::vector<double> random_samples(Rng& rng) {
  std::vector<double> samples(rng.uniform(300));
  for (double& sample : samples) {
    sample = rng.uniform_double(-100.0, 12500.0);
  }
  return samples;
}

TEST(ShardMergeProperty, CdfContiguousShardsEqualSinglePass) {
  Rng rng(0x5eed);
  for (int round = 0; round < 40; ++round) {
    const std::vector<double> samples = random_samples(rng);
    const stats::EmpiricalCdf single(samples);
    for (const std::size_t shards : kGeometries) {
      stats::EmpiricalCdf merged;
      const std::size_t per = (samples.size() + shards - 1) / shards;
      for (std::size_t shard = 0; shard < shards; ++shard) {
        const std::size_t begin = std::min(shard * per, samples.size());
        const std::size_t end = std::min(begin + per, samples.size());
        merged.merge_from(stats::EmpiricalCdf(
            std::vector<double>(samples.begin() + begin, samples.begin() + end)));
      }
      // Same multiset, both sorted: the sample vectors are bitwise equal,
      // so every derived percentile/curve is too.
      ASSERT_EQ(merged.sorted_samples(), single.sorted_samples());
    }
  }
}

TEST(ShardMergeProperty, CdfArbitraryPartitionEqualsSinglePass) {
  Rng rng(0xa1b2);
  for (int round = 0; round < 40; ++round) {
    const std::vector<double> samples = random_samples(rng);
    const stats::EmpiricalCdf single(samples);
    for (const std::size_t shards : kGeometries) {
      // Scatter-assign each sample to a shard: merge order is fixed, the
      // partition is not even contiguous, and the algebra must not care.
      std::vector<std::vector<double>> parts(shards);
      for (const double sample : samples) {
        parts[rng.uniform(shards)].push_back(sample);
      }
      stats::EmpiricalCdf merged;
      for (auto& part : parts) {
        merged.merge_from(stats::EmpiricalCdf(std::move(part)));
      }
      ASSERT_EQ(merged.sorted_samples(), single.sorted_samples());
    }
  }
}

TEST(ShardMergeProperty, CdfIncrementalAddMatchesMerge) {
  Rng rng(0xc0ffee);
  const std::vector<double> samples = random_samples(rng);
  stats::EmpiricalCdf incremental;
  for (const double sample : samples) incremental.add(sample);
  stats::EmpiricalCdf merged;
  merged.merge_from(stats::EmpiricalCdf(samples));
  EXPECT_EQ(incremental.sorted_samples(), merged.sorted_samples());
}

// --- analyze_monitoring ------------------------------------------------------

std::vector<core::MonitorObservation> random_observations(Rng& rng,
                                                          std::size_t count) {
  // Organization names that resolve nowhere in the mini world's CAIDA map —
  // entity attribution must work purely from the observation contents.
  const char* const kOrgs[] = {"Acme Analytics", "Globex Monitor",
                               "Initech Scraper", "Umbrella Research"};
  std::vector<core::MonitorObservation> observations(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto& observation = observations[i];
    observation.txn_id = 0x1000 + i;
    observation.zid = "zid-" + std::to_string(rng.uniform(50));
    observation.asn = static_cast<net::Asn>(1 + rng.uniform(30));
    observation.country = rng.chance(0.5) ? "us" : "de";
    observation.reported_exit_address =
        net::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    observation.own_request_source = observation.reported_exit_address;
    const std::size_t unexpected = rng.uniform(4);
    for (std::size_t j = 0; j < unexpected; ++j) {
      core::UnexpectedRequest request;
      request.source = net::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
      request.asn = static_cast<net::Asn>(1 + rng.uniform(30));
      request.organization = kOrgs[rng.uniform(std::size(kOrgs))];
      request.delay_seconds = rng.uniform_double(-1.0, 12000.0);
      observation.unexpected.push_back(std::move(request));
    }
  }
  return observations;
}

TEST(ShardMergeProperty, MonitorAnalysisInvariantUnderMergeShards) {
  const auto world = world::build_world(world::mini_spec(), 0.6, 2016);
  Rng rng(0xd00d);
  const auto observations = random_observations(rng, 97);

  core::MonitorAnalysisConfig config;
  config.merge_shards = 1;
  const core::MonitorReport baseline =
      core::analyze_monitoring(*world, observations, config);
  const std::string baseline_json = core::monitor_report_json(baseline);
  ASSERT_FALSE(baseline.top_entities.empty());

  for (const std::size_t shards : kGeometries) {
    config.merge_shards = shards;
    const core::MonitorReport sharded =
        core::analyze_monitoring(*world, observations, config);
    ASSERT_EQ(core::monitor_report_json(sharded), baseline_json)
        << "merge_shards=" << shards;
  }
  // 0 collapses to a single shard rather than dividing by zero.
  config.merge_shards = 0;
  EXPECT_EQ(core::monitor_report_json(
                core::analyze_monitoring(*world, observations, config)),
            baseline_json);
}

// --- Recorder ----------------------------------------------------------------

void record_range(obs::Recorder& recorder, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint64_t txn = 0x9000 + i;
    recorder.begin(txn, "dns", "t" + std::to_string(i) + ".example");
    recorder.annotate_node("zid-" + std::to_string(i % 13));
    recorder.event(obs::Hop::kExitNode, "node", "resolve", "",
                   1000 * static_cast<std::uint64_t>(i));
    if (i % 3 == 0) {
      recorder.violation(obs::Hop::kMiddlebox, "dnsbox", "rewrite", "",
                         1000 * static_cast<std::uint64_t>(i) + 5);
      recorder.end("hijacked");
    } else {
      recorder.end("clean");
    }
  }
}

TEST(ShardMergeProperty, RecorderMergeStableAcrossGeometries) {
  constexpr std::size_t kTxns = 120;
  obs::Recorder single;
  record_range(single, 0, kTxns);
  const std::string baseline = obs::encode_trace(single.records());
  ASSERT_FALSE(baseline.empty());

  for (const std::size_t shards : kGeometries) {
    std::vector<obs::Recorder> parts(shards);
    const std::size_t per = (kTxns + shards - 1) / shards;
    for (std::size_t shard = 0; shard < shards; ++shard) {
      record_range(parts[shard], std::min(shard * per, kTxns),
                   std::min(shard * per + per, kTxns));
    }
    obs::Recorder merged;
    for (const auto& part : parts) merged.merge_from(part);

    // Byte-stable NDJSON and unique, order-preserved txn ids.
    ASSERT_EQ(obs::encode_trace(merged.records()), baseline)
        << "shards=" << shards;
    ASSERT_EQ(merged.records().size(), kTxns);
    for (std::size_t i = 0; i < kTxns; ++i) {
      ASSERT_EQ(merged.records()[i].txn_id, 0x9000 + i);
      ASSERT_NE(merged.find(merged.records()[i].txn_id), nullptr);
    }
  }
}

}  // namespace
}  // namespace tft
