#include "tft/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace tft::util {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter json;
  json.begin_object()
      .field("name", "tft")
      .field("nodes", std::uint64_t{1276873})
      .field("ratio", 0.048)
      .field("ok", true)
      .end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(json.str(),
            R"({"name":"tft","nodes":1276873,"ratio":0.048,"ok":true})");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.begin_array("rows");
  json.begin_object().field("a", 1).end_object();
  json.begin_object().field("a", 2).end_object();
  json.end_array();
  json.begin_object("meta").field("count", 2).end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"rows":[{"a":1},{"a":2}],"meta":{"count":2}})");
}

TEST(JsonWriterTest, ArrayOfScalars) {
  JsonWriter json;
  json.begin_array();
  json.value("x").value(std::int64_t{-3}).value(true).null().value(1.5);
  json.end_array();
  EXPECT_EQ(json.str(), R"(["x",-3,true,null,1.5])");
}

TEST(JsonWriterTest, Escaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::escape("utf8 \xC3\xA9 ok"), "utf8 \xC3\xA9 ok");
}

TEST(JsonWriterTest, EscapedKeysAndValues) {
  JsonWriter json;
  json.begin_object().field("we\"ird", "v\nal").end_object();
  EXPECT_EQ(json.str(), R"({"we\"ird":"v\nal"})");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter object;
  object.begin_object().end_object();
  EXPECT_EQ(object.str(), "{}");
  JsonWriter array;
  array.begin_array().end_array();
  EXPECT_EQ(array.str(), "[]");
}

TEST(JsonWriterTest, CompleteTracksBalance) {
  JsonWriter json;
  EXPECT_FALSE(json.complete());
  json.begin_object();
  EXPECT_FALSE(json.complete());
  json.end_object();
  EXPECT_TRUE(json.complete());
}

}  // namespace
}  // namespace tft::util
