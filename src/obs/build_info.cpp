#include "tft/obs/build_info.hpp"

#include "tft/obs/build_info_generated.hpp"
#include "tft/util/json.hpp"

namespace tft::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{TFT_GIT_DESCRIBE, TFT_BUILD_TYPE,
                              TFT_SANITIZE_VALUE};
  return info;
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  std::string line = "tft " + info.git_describe + " (" + info.build_type;
  if (!info.sanitizer.empty()) line += ", sanitize=" + info.sanitizer;
  line += ")";
  return line;
}

void write_build_info(util::JsonWriter& json) {
  const BuildInfo& info = build_info();
  json.begin_object("build");
  json.field("git_describe", info.git_describe);
  json.field("build_type", info.build_type);
  json.field("sanitizer", info.sanitizer);
  json.end_object();
}

}  // namespace tft::obs
