#include "tft/proxy/exit_node.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "tft/middlebox/http_modifiers.hpp"
#include "tft/tls/authority.hpp"

namespace tft::proxy {
namespace {

class ExitNodeTest : public ::testing::Test {
 protected:
  ExitNodeTest() {
    // Authoritative zone + resolver.
    auto zone = std::make_shared<dns::AuthoritativeServer>(
        *dns::DnsName::parse("tft-study.net"));
    zone->add_a(*dns::DnsName::parse("web.tft-study.net"), web_address_);
    zone_ = zone.get();
    authorities_.register_zone(std::move(zone));
    auto resolver = std::make_shared<dns::RecursiveResolver>(
        resolver_address_, resolver_address_, &authorities_, &clock_);
    resolver_ = resolver.get();
    resolvers_.add_resolver(std::move(resolver));

    // Web server.
    auto server = std::make_shared<http::OriginServer>("web");
    server->add_path_for_any_host("/", http::Response::make(200, "OK", "hello"));
    web_server_ = server.get();
    web_.add(web_address_, std::move(server));

    // TLS endpoint.
    auto ca = tls::CertificateAuthority::make_root(
        {"Root", "Trust", "US"}, 1, sim::Instant::epoch() - sim::Duration::hours(1),
        sim::Instant::epoch() + sim::Duration::hours(24 * 365));
    tls::CertificateAuthority::LeafOptions options;
    options.hosts = {"secure.tft-study.net"};
    auto tls_server = std::make_shared<tls::TlsServer>("secure");
    tls_server->set_default_chain(ca.chain_for(ca.issue(options)));
    tls_.add(tls_address_, std::move(tls_server));

    environment_ = Environment{&resolvers_, &web_, &tls_, &smtp_, &clock_, &topology_};
  }

  ExitNodeAgent make_node(ExitNodeAgent::Config config = {}) {
    if (config.zid.empty()) config.zid = "test-node";
    if (config.address == net::Ipv4Address{}) config.address = node_address_;
    if (config.dns_resolver == net::Ipv4Address{}) config.dns_resolver = resolver_address_;
    config.country = "US";
    return ExitNodeAgent(std::move(config), environment_);
  }

  net::Ipv4Address node_address_{203, 0, 113, 5};
  net::Ipv4Address resolver_address_{10, 0, 0, 53};
  net::Ipv4Address web_address_{198, 51, 100, 10};
  net::Ipv4Address tls_address_{198, 51, 100, 20};

  sim::EventQueue clock_;
  net::AsOrgDb topology_;
  dns::AuthorityRegistry authorities_;
  dns::AuthoritativeServer* zone_ = nullptr;
  dns::ResolverDirectory resolvers_;
  dns::RecursiveResolver* resolver_ = nullptr;
  http::WebServerRegistry web_;
  http::OriginServer* web_server_ = nullptr;
  tls::TlsEndpointRegistry tls_;
  smtp::SmtpServerRegistry smtp_;
  Environment environment_;
};

TEST_F(ExitNodeTest, ResolveThroughConfiguredResolver) {
  auto node = make_node();
  const auto answer = node.resolve(*dns::DnsName::parse("web.tft-study.net"));
  EXPECT_EQ(answer.first_a(), web_address_);
}

TEST_F(ExitNodeTest, FetchHttpResolvesAndFetches) {
  auto node = make_node();
  const auto outcome = node.fetch_http(*http::Url::parse("http://web.tft-study.net/"));
  EXPECT_FALSE(outcome.dns_nxdomain);
  EXPECT_FALSE(outcome.dns_failed);
  EXPECT_EQ(outcome.response.body, "hello");
  EXPECT_EQ(outcome.destination, web_address_);
  // The origin saw the node's address.
  ASSERT_EQ(web_server_->request_log().size(), 1u);
  EXPECT_EQ(web_server_->request_log()[0].source, node_address_);
}

TEST_F(ExitNodeTest, FetchHttpReportsNxdomain) {
  auto node = make_node();
  const auto outcome =
      node.fetch_http(*http::Url::parse("http://missing.tft-study.net/"));
  EXPECT_TRUE(outcome.dns_nxdomain);
}

TEST_F(ExitNodeTest, FetchHttpReportsDnsFailure) {
  ExitNodeAgent::Config config;
  config.dns_resolver = net::Ipv4Address(9, 9, 9, 9);  // no such resolver
  auto node = make_node(std::move(config));
  const auto outcome = node.fetch_http(*http::Url::parse("http://web.tft-study.net/"));
  EXPECT_TRUE(outcome.dns_failed);
}

TEST_F(ExitNodeTest, PreresolvedAddressSkipsDns) {
  ExitNodeAgent::Config config;
  config.dns_resolver = net::Ipv4Address(9, 9, 9, 9);  // broken resolver
  auto node = make_node(std::move(config));
  const auto outcome = node.fetch_http(
      *http::Url::parse("http://web.tft-study.net/"), web_address_);
  EXPECT_EQ(outcome.response.body, "hello");  // worked despite broken DNS
}

TEST_F(ExitNodeTest, DnsInterceptorsApply) {
  ExitNodeAgent::Config config;
  config.dns_interceptors.push_back(std::make_shared<middlebox::NxdomainRewriter>(
      middlebox::NxdomainRewriter::Config{"cpe", web_address_, 1.0, 60}));
  auto node = make_node(std::move(config));
  const auto answer = node.resolve(*dns::DnsName::parse("typo.tft-study.net"));
  EXPECT_FALSE(answer.is_nxdomain());
  EXPECT_EQ(answer.first_a(), web_address_);
}

TEST_F(ExitNodeTest, TransparentProxyOverridesResolver) {
  ExitNodeAgent::Config config;
  config.dns_resolver = net::Ipv4Address(9, 9, 9, 9);  // broken
  config.dns_interceptors.push_back(std::make_shared<middlebox::TransparentDnsProxy>(
      "isp-box", resolver_address_));  // redirects to the working one
  auto node = make_node(std::move(config));
  const auto answer = node.resolve(*dns::DnsName::parse("web.tft-study.net"));
  EXPECT_EQ(answer.first_a(), web_address_);
}

TEST_F(ExitNodeTest, HttpInterceptorsApply) {
  ExitNodeAgent::Config config;
  config.http_interceptors.push_back(std::make_shared<middlebox::ContentBlocker>(
      middlebox::ContentBlocker::Config{"blocker", "blocked", 403}));
  auto node = make_node(std::move(config));
  const auto outcome = node.fetch_http(*http::Url::parse("http://web.tft-study.net/"));
  EXPECT_EQ(outcome.response.status, 403);
}

TEST_F(ExitNodeTest, FetchCertificateChain) {
  auto node = make_node();
  const auto chain = node.fetch_certificate_chain(tls_address_, "secure.tft-study.net");
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->front().subject.common_name, "secure.tft-study.net");
  EXPECT_FALSE(node.fetch_certificate_chain(net::Ipv4Address(1, 1, 1, 1), "x")
                   .has_value());
}

TEST_F(ExitNodeTest, TlsInterceptorsApply) {
  middlebox::CertReplacer::Config replacer;
  replacer.name = "AV";
  replacer.forge.issuer = {"AV Root", "AV", "US"};
  replacer.forge.signing_key = 777;
  ExitNodeAgent::Config config;
  config.tls_interceptors.push_back(
      std::make_shared<middlebox::CertReplacer>(replacer, 1));
  auto node = make_node(std::move(config));
  const auto chain = node.fetch_certificate_chain(tls_address_, "secure.tft-study.net");
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->front().issuer.common_name, "AV Root");
}

TEST_F(ExitNodeTest, FailureProbabilityExtremes) {
  ExitNodeAgent::Config never;
  never.failure_probability = 0.0;
  auto reliable = make_node(std::move(never));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(reliable.attempt_fails());

  ExitNodeAgent::Config always;
  always.failure_probability = 1.0;
  always.zid = "flaky";
  auto flaky = make_node(std::move(always));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(flaky.attempt_fails());
}

TEST_F(ExitNodeTest, OnlineFlag) {
  auto node = make_node();
  EXPECT_TRUE(node.online());
  node.set_online(false);
  EXPECT_FALSE(node.online());
}

TEST(EphemeralClientPortTest, StaysInIanaEphemeralRange) {
  // Regression: the old `next_u64() & 0xFFFF` derivation could yield 0
  // (invalid as a DNS query id / source port) or collide with well-known
  // ports. Every draw must land in [49152, 65535].
  util::StreamRng stream(0x515, 0, "port");
  std::uint16_t lowest = 0xFFFF;
  std::uint16_t highest = 0;
  for (int i = 0; i < 200000; ++i) {
    const std::uint16_t port = ephemeral_client_port(stream);
    ASSERT_GE(port, 49152);
    lowest = std::min(lowest, port);
    highest = std::max(highest, port);
  }
  // 200k draws over a 16384-port range cover both edges.
  EXPECT_EQ(lowest, 49152);
  EXPECT_EQ(highest, 65535);
}

}  // namespace
}  // namespace tft::proxy
