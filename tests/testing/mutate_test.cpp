// Mutation strategies: deterministic from the Rng stream, effective (they
// usually change the input), and safe on degenerate inputs.
#include "tft/testing/mutate.hpp"

#include <gtest/gtest.h>

namespace tft::testing {
namespace {

constexpr std::string_view kSample = "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";

TEST(MutateTest, DeterministicFromSeed) {
  util::Rng a(9), b(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(mutate(kSample, a), mutate(kSample, b)) << i;
  }
  util::Rng c(10), d(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(mutate_many(kSample, c, 4), mutate_many(kSample, d, 4)) << i;
  }
}

TEST(MutateTest, EveryKindRunsAndUsuallyChangesInput) {
  util::Rng rng(11);
  for (std::size_t kind = 0; kind < kMutationKindCount; ++kind) {
    std::size_t changed = 0;
    for (int i = 0; i < 100; ++i) {
      const std::string mutant =
          mutate_with(static_cast<MutationKind>(kind), kSample, rng);
      changed += mutant != kSample;
    }
    // Some strategies can occasionally no-op (e.g. swapping two equal
    // bytes), but each must mutate the overwhelming majority of the time.
    EXPECT_GT(changed, 80u) << "kind " << kind;
  }
}

TEST(MutateTest, DegenerateInputsNeverCrash) {
  util::Rng rng(12);
  for (std::size_t kind = 0; kind < kMutationKindCount; ++kind) {
    for (const std::string_view input : {std::string_view{}, std::string_view{"x"}}) {
      for (int i = 0; i < 20; ++i) {
        (void)mutate_with(static_cast<MutationKind>(kind), input, rng);
      }
    }
  }
  (void)mutate_many("", rng, 8);
}

TEST(MutateTest, DictionaryCoversFramingEdgeCases) {
  const auto& dictionary = mutation_dictionary();
  ASSERT_GE(dictionary.size(), 8u);
  const auto has = [&](std::string_view token) {
    for (const auto& entry : dictionary) {
      if (entry.find(token) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("ffffffffffffffff"));  // chunk-size overflow
  EXPECT_TRUE(has("0\r\n\r\n"));         // chunked terminator
  EXPECT_TRUE(has("\xc0"));              // DNS compression pointer
  EXPECT_TRUE(has("TFTC"));              // TLS chain magic
  EXPECT_TRUE(has("250-"));              // SMTP continuation
}

TEST(MutateTest, MagicTokenSplicesDictionaryEntry) {
  util::Rng rng(13);
  bool spliced = false;
  for (int i = 0; i < 200 && !spliced; ++i) {
    const std::string mutant = mutate_with(MutationKind::kMagicToken, "aaaa", rng);
    for (const auto& token : mutation_dictionary()) {
      spliced = spliced || mutant.find(token) != std::string::npos;
    }
  }
  EXPECT_TRUE(spliced);
}

}  // namespace
}  // namespace tft::testing
