// Edge cases of the interception framework: default base-class behaviour,
// context-less operation, and interceptor composition order.
#include <gtest/gtest.h>

#include <memory>

#include "tft/middlebox/http_modifiers.hpp"
#include "tft/middlebox/monitor.hpp"

namespace tft::middlebox {
namespace {

class NamedOnlyInterceptor : public HttpInterceptor {
 public:
  std::string_view name() const override { return "named-only"; }
};

TEST(InterceptorEdgeTest, BaseClassDefaultsAreTransparent) {
  NamedOnlyInterceptor interceptor;
  FetchContext context;
  http::Request request = http::Request::origin_get(
      *http::Url::parse("http://x.example/"));
  EXPECT_FALSE(interceptor.before_request(request, context).has_value());
  http::Response response = http::Response::make(200, "OK", "body");
  EXPECT_EQ(interceptor.after_response(request, response, context).body, "body");
}

TEST(InterceptorEdgeTest, InjectorWithoutRngStillInjects) {
  // probability < 1 requires an RNG; with a null RNG the injector treats
  // the response as eligible (deterministic worlds always supply one).
  HtmlInjector injector({"adware", "<ad>", 0, 1.0});
  FetchContext context;  // rng == nullptr
  http::Request request = http::Request::origin_get(
      *http::Url::parse("http://x.example/"));
  auto response = http::Response::make(
      200, "OK", "<html><body>content</body></html>");
  const auto modified = injector.after_response(request, response, context);
  EXPECT_NE(modified.body.find("<ad>"), std::string::npos);
}

TEST(InterceptorEdgeTest, MonitorWithoutEnvironmentIsInert) {
  MonitorProfile profile;
  profile.name = "X";
  profile.source_addresses = {net::Ipv4Address(1, 2, 3, 4)};
  profile.refetches = {RefetchSpec{}};
  ContentMonitor monitor(profile);
  FetchContext context;  // no clock / web / rng
  http::Request request = http::Request::origin_get(
      *http::Url::parse("http://x.example/"));
  EXPECT_FALSE(monitor.before_request(request, context).has_value());
}

TEST(InterceptorEdgeTest, TranscoderLeavesCorruptImagesAlone) {
  ImageTranscoder transcoder({"t", 50, 1.0});
  FetchContext context;
  sim::EventQueue clock;
  util::Rng rng(1);
  context.clock = &clock;
  context.rng = &rng;
  http::Request request = http::Request::origin_get(
      *http::Url::parse("http://x.example/image.simg"));
  auto response = http::Response::make(200, "OK", "not-actually-an-image",
                                       "image/simg");
  EXPECT_EQ(transcoder.after_response(request, response, context).body,
            "not-actually-an-image");
}

TEST(InterceptorEdgeTest, InjectorHonorsMinBodyBytesBoundary) {
  HtmlInjector injector({"adware", "<ad>", 100, 1.0});
  FetchContext context;
  http::Request request = http::Request::origin_get(
      *http::Url::parse("http://x.example/"));
  const std::string body_99(99, 'x');
  auto small = http::Response::make(200, "OK", body_99, "text/html");
  EXPECT_EQ(injector.after_response(request, small, context).body, body_99);
  const std::string body_100(100, 'x');
  auto exact = http::Response::make(200, "OK", body_100, "text/html");
  EXPECT_NE(injector.after_response(request, exact, context).body, body_100);
}

}  // namespace
}  // namespace tft::middlebox
