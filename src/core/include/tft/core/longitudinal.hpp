// Continuous measurement (§9): "this opens the door to continuous
// measurements worldwide, with the ability to see how various types of
// violations evolve over time." A LongitudinalDnsStudy re-runs the §4
// methodology at fixed simulated intervals and tracks how the hijacking
// rate and the per-ISP attribution evolve — e.g. an ISP rolling out or
// retiring a "search assist" box between rounds.
//
// Long-running studies are resumable: every probe samples from keyed
// counter-based streams, so one (key, counter) pair per round is a complete
// checkpoint of the study's randomness. run_partial() stops after N rounds
// and hands back a util::StreamCheckpoint; resume() validates it against
// the study's configuration and continues, reproducing the uninterrupted
// run byte-for-byte.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tft/core/dns_probe.hpp"
#include "tft/util/stream_rng.hpp"

namespace tft::core {

struct LongitudinalConfig {
  int rounds = 6;
  sim::Duration interval = sim::Duration::hours(24 * 30);  // ~monthly
  DnsProbeConfig probe;       // per-round crawl settings (seed is advanced)
  DnsAnalysisConfig analysis;
};

struct LongitudinalRound {
  int round = 0;
  sim::Instant time;
  std::size_t measured = 0;
  std::size_t hijacked = 0;
  double ratio = 0;
  /// Table 4 snapshot for this round (per-ISP hijacking).
  std::vector<DnsIspRow> isp_hijackers;

  bool isp_listed(std::string_view isp) const {
    for (const auto& row : isp_hijackers) {
      if (row.isp == isp) return true;
    }
    return false;
  }
};

struct LongitudinalResult {
  /// Rounds completed by this call (resume() returns only the new ones).
  std::vector<LongitudinalRound> rounds;
  /// Stream state after the last completed round: one (key, counter) entry
  /// per round's country sampler, plus the next round index.
  util::StreamCheckpoint checkpoint;
  /// All configured rounds are done.
  bool complete = false;
};

class LongitudinalDnsStudy {
 public:
  LongitudinalDnsStudy(world::World& world, LongitudinalConfig config)
      : world_(world), config_(std::move(config)) {}

  /// Hook invoked between rounds (after advancing the clock, before the
  /// next crawl) — the place to mutate the world (deploy/retire hijacking).
  using BetweenRounds = std::function<void(int next_round, world::World& world)>;
  void set_between_rounds(BetweenRounds hook) { between_rounds_ = std::move(hook); }

  /// Run every configured round (convenience wrapper over run_partial).
  std::vector<LongitudinalRound> run();

  /// Run rounds [0, stop_after); stop_after < 0 or beyond the configured
  /// count runs them all. The returned checkpoint resumes the study.
  LongitudinalResult run_partial(int stop_after);

  /// Continue a checkpointed study on a world whose state matches the end
  /// of the checkpoint's last round (the same world object, or an
  /// identically-built world that ran the same prefix). Errors out when
  /// the checkpoint's stream keys disagree with this study's configuration
  /// (wrong seed, wrong study) instead of silently diverging.
  util::Result<LongitudinalResult> resume(const util::StreamCheckpoint& checkpoint);

  /// The derived probe seed for one round (pure function of the config).
  std::uint64_t round_seed(int round) const {
    return config_.probe.seed + static_cast<std::uint64_t>(round) * 7919;
  }

 private:
  LongitudinalResult run_rounds(int first_round, int stop_after,
                                util::StreamCheckpoint checkpoint);
  /// Record one completed round's stream state into the checkpoint.
  void rounds_completed(LongitudinalResult& result, const DnsHijackProbe& probe,
                        int round);

  world::World& world_;
  LongitudinalConfig config_;
  BetweenRounds between_rounds_;
};

/// Render the time series: per-round rates and an ISP presence matrix.
std::string render_longitudinal(const std::vector<LongitudinalRound>& rounds);
/// As above, plus the serialized stream checkpoint (the resumable report).
std::string render_longitudinal(const std::vector<LongitudinalRound>& rounds,
                                const util::StreamCheckpoint& checkpoint);

}  // namespace tft::core
