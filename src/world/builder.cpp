#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <map>
#include <unordered_set>

#include "tft/http/content.hpp"
#include "tft/middlebox/http_modifiers.hpp"
#include "tft/middlebox/monitor.hpp"
#include "tft/middlebox/tls_interceptor.hpp"
#include "tft/smtp/interceptor.hpp"
#include "tft/util/hash.hpp"
#include "tft/util/stream_rng.hpp"
#include "tft/util/strings.hpp"
#include "tft/world/node_plan.hpp"
#include "tft/world/world.hpp"

namespace tft::world {

namespace {

using net::Asn;
using net::CountryCode;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::OrgId;
using net::OrgKind;

/// The hijack landing page an ad server serves. The five shared-vendor ISPs
/// get byte-identical JavaScript except for the landing URL constant
/// (§4.3.1's common-hardware observation).
std::string hijack_page(std::string_view landing_host, bool shared_vendor_js) {
  std::string url = "http://" + std::string(landing_host) + "/search";
  if (shared_vendor_js) {
    return "<html><head><title>Search Assistance</title>\n"
           "<script type=\"text/javascript\">\n"
           "var dnsAssistTarget=\"" + url + "\";\n"
           "function dnsAssistRedirect(){\n"
           "  var q=encodeURIComponent(window.location.hostname);\n"
           "  window.location.replace(dnsAssistTarget+\"?q=\"+q+\"&cat=dnsr\");\n"
           "}\n"
           "window.onload=dnsAssistRedirect;\n"
           "</script></head>\n"
           "<body><p>The address you entered could not be found. "
           "Redirecting to <a href=\"" + url + "\">search results</a>.</p>"
           "</body></html>\n";
  }
  return "<html><head><title>Address not found</title></head><body>\n"
         "<h1>We could not find that site</h1>\n"
         "<p>Here are some sponsored results instead:</p>\n"
         "<ul><li><a href=\"" + url + "?src=nxd\">" + std::string(landing_host) +
         "</a></li></ul>\n"
         "<img src=\"http://" + std::string(landing_host) + "/pixel.gif\">\n"
         "</body></html>\n";
}

/// Builder-only mutable companion of a PlanIsp: the per-AS host allocation
/// cursors used while the plan is being laid out.
struct IspState {
  std::vector<std::uint32_t> next_host;  // parallel to the plan ISP's asns
};

/// Adapts a sealed NodePlan to the proxy's lazy population interface: every
/// materialize(i) re-derives node i from its keyed streams, so the returned
/// agent is byte-identical no matter when or how often it is built.
class PlanNodeSource : public proxy::NodeSource {
 public:
  PlanNodeSource(std::shared_ptr<const NodePlan> plan,
                 proxy::Environment environment)
      : plan_(std::move(plan)), environment_(environment) {}

  std::size_t node_count() const override { return plan_->node_count(); }

  std::size_t country_count(const CountryCode& country) const override {
    return plan_->country_count(country);
  }

  std::vector<std::pair<CountryCode, std::size_t>> country_counts()
      const override {
    std::vector<std::pair<CountryCode, std::size_t>> out;
    out.reserve(plan_->country_totals().size());
    for (const auto& [country, total] : plan_->country_totals()) {
      out.emplace_back(country, total);
    }
    return out;
  }

  std::size_t country_slot(const CountryCode& country,
                           std::size_t slot) const override {
    return plan_->country_slot(country, slot);
  }

  std::shared_ptr<proxy::ExitNodeAgent> materialize(
      std::size_t index) const override {
    return std::make_shared<proxy::ExitNodeAgent>(plan_->node_config(index),
                                                  environment_);
  }

 private:
  std::shared_ptr<const NodePlan> plan_;
  proxy::Environment environment_;
};

class WorldBuilder {
 public:
  WorldBuilder(const WorldSpec& spec, double scale, std::uint64_t seed)
      : spec_(spec),
        scale_(scale),
        seed_(seed),
        world_(std::make_unique<World>()),
        plan_(std::make_shared<NodePlan>()) {
    plan_->seed = seed;
  }

  /// lazy_shards == 0 materializes every node eagerly (the classic path);
  /// lazy_shards >= 1 hands the plan to the proxy as a NodeSource with a
  /// resident ceiling of ceil(nodes / lazy_shards).
  std::unique_ptr<World> build(std::size_t lazy_shards);

 private:
  /// Transient per-node planning state. The assignment phases' predicates
  /// only ever ask boolean questions about a node, so one word per node
  /// replaces the old materialized per-node record; the vector is dropped
  /// in finalize, leaving the plan O(assignments).
  enum NodeFlag : std::uint16_t {
    kGoogle = 1 << 0,    // currently uses Google DNS
    kOnIsp = 1 << 1,     // creation-time pick landed on the ISP resolver
    kTruthDns = 1 << 2,  // dns hijack ground truth set (any source)
    kDnsItc = 1 << 3,    // has a dns interceptor
    kHttpItc = 1 << 4,   // has any http interceptor
    kHtmlInj = 1 << 5,   // html injector truth set
    kBlocker = 1 << 6,   // content blocker truth set
    kObjRepl = 1 << 7,   // object replacer truth set
    kCert = 1 << 8,      // cert replacer truth set
    kMonitor = 1 << 9,   // monitor truth set
    kSmtp = 1 << 10,     // smtp interceptor truth set
  };

  int scaled(int n) const {
    if (n <= 0) return 0;
    return std::max(1, static_cast<int>(std::llround(n * scale_)));
  }

  // --- address space -------------------------------------------------------
  Ipv4Prefix allocate_prefix();

  // --- construction phases --------------------------------------------------
  void build_measurement_infrastructure();
  void build_google_dns();
  void build_public_resolvers();
  void build_isps_and_nodes();
  void assign_public_hijack_users();
  void assign_path_and_host_dns_hijackers();
  void assign_http_modifiers();
  void build_https_sites();
  void assign_cert_replacers();
  void assign_monitors();
  void assign_smtp_interceptors();
  void finalize(std::size_t lazy_shards);
  void record_world_gauges();

  // --- helpers ---------------------------------------------------------------
  std::size_t create_isp(std::string name, CountryCode country, OrgKind kind,
                         std::vector<Asn> asns);
  std::shared_ptr<dns::RecursiveResolver> create_resolver(
      Ipv4Address service, std::optional<dns::NxdomainHijackPolicy> hijack);
  Ipv4Address create_ad_server(std::string_view landing_host, Ipv4Address address,
                               bool shared_vendor_js);
  void create_nodes(std::size_t isp, int count, bool force_isp_resolver,
                    double google_fraction, double public_fraction,
                    DnsHijackSource hijack_source, std::string hijack_operator);
  /// Pick up to `count` node indices satisfying `predicate`, spread over at
  /// least `as_spread` ASes and `country_spread` countries where possible.
  /// `purpose` keys the shuffle stream: every assignment phase draws from
  /// its own stream, so adding or reordering phases never reshuffles the
  /// others' picks. The predicate receives (node index, plan ISP index).
  std::vector<std::size_t> pick_spread(
      std::string_view purpose, int count, int as_spread, int country_spread,
      const std::function<bool(std::size_t, std::uint32_t)>& predicate);
  std::size_t find_isp(std::string_view name, const CountryCode& country) const;

  NodeOverlay& overlay(std::size_t index) {
    return plan_->overlays[static_cast<std::uint32_t>(index)];
  }
  std::uint32_t add_dns_shared(std::shared_ptr<middlebox::DnsInterceptor> itc) {
    plan_->dns_shared.push_back(std::move(itc));
    return static_cast<std::uint32_t>(plan_->dns_shared.size() - 1);
  }
  std::uint32_t add_http_shared(std::shared_ptr<middlebox::HttpInterceptor> itc) {
    plan_->http_shared.push_back(std::move(itc));
    return static_cast<std::uint32_t>(plan_->http_shared.size() - 1);
  }

  const WorldSpec& spec_;
  double scale_;
  /// Base of every keyed draw stream the builder (and, via finalize, the
  /// proxy overlay and exit nodes) uses. No shared sequential engine: all
  /// build randomness is keyed by (seed, entity, purpose).
  std::uint64_t seed_;
  std::unique_ptr<World> world_;

  /// The compact population description every node is regenerated from.
  std::shared_ptr<NodePlan> plan_;
  std::vector<IspState> isp_state_;   // parallel to plan_->isps
  std::vector<std::uint16_t> flags_;  // transient, one word per node
  std::map<std::string, std::vector<Ipv4Address>> public_hijack_services_;
  Ipv4Address opendns_service_{208, 67, 222, 222};
  std::uint32_t next_prefix_block_ = 11 << 8;  // /16 blocks, starting 11.0.0.0
  Asn next_synthetic_asn_ = 60000;
  tls::CertificateAuthority* site_ca_ = nullptr;  // set in build_https_sites
  std::vector<tls::CertificateAuthority> cas_;
};

Ipv4Prefix WorldBuilder::allocate_prefix() {
  static const std::unordered_set<std::uint32_t> kReservedFirstOctets = {
      0, 8, 10, 74, 127, 172, 173, 192, 198, 199, 203, 208, 209, 224, 255};
  for (;;) {
    const std::uint32_t block = next_prefix_block_++;
    if (kReservedFirstOctets.contains(block >> 8)) continue;
    return *Ipv4Prefix::make(Ipv4Address(block << 16), 16);
  }
}

std::size_t WorldBuilder::create_isp(std::string name, CountryCode country,
                                     OrgKind kind, std::vector<Asn> asns) {
  PlanIsp isp;
  IspState state;
  isp.name = name;
  isp.country = country;
  const OrgId org = world_->topology.add_organization(std::move(name), country, kind);
  if (asns.empty()) asns.push_back(next_synthetic_asn_++);
  for (const Asn asn : asns) {
    world_->topology.add_as(asn, org);
    const Ipv4Prefix prefix = allocate_prefix();
    world_->topology.announce(prefix, asn);
    isp.asns.push_back(asn);
    isp.prefixes.push_back(prefix);
    state.next_host.push_back(1000);
  }
  plan_->isps.push_back(std::move(isp));
  isp_state_.push_back(std::move(state));
  return plan_->isps.size() - 1;
}

std::shared_ptr<dns::RecursiveResolver> WorldBuilder::create_resolver(
    Ipv4Address service, std::optional<dns::NxdomainHijackPolicy> hijack) {
  auto resolver = std::make_shared<dns::RecursiveResolver>(
      service, service, &world_->authorities, &world_->clock);
  resolver->set_metrics(&world_->metrics);
  resolver->set_recorder(&world_->recorder);
  if (hijack) resolver->set_nxdomain_hijack(*hijack);
  world_->resolvers.add_resolver(resolver);
  return resolver;
}

Ipv4Address WorldBuilder::create_ad_server(std::string_view landing_host,
                                           Ipv4Address address,
                                           bool shared_vendor_js) {
  auto server = std::make_shared<http::OriginServer>(
      "ad-server:" + std::string(landing_host));
  const std::string page = hijack_page(landing_host, shared_vendor_js);
  server->set_default_handler(
      [page](const http::Request&) { return http::Response::make(200, "OK", page); });
  world_->web.add(address, server);
  return address;
}

void WorldBuilder::build_measurement_infrastructure() {
  world_->measurement_zone_origin = *dns::DnsName::parse("tft-study.net");
  world_->measurement_zone =
      std::make_shared<dns::AuthoritativeServer>(world_->measurement_zone_origin);
  world_->measurement_web_address = Ipv4Address(198, 51, 100, 10);
  world_->measurement_zone->add_wildcard_a(
      *dns::DnsName::parse("probe.tft-study.net"), world_->measurement_web_address, 60);
  world_->measurement_zone->add_a(*dns::DnsName::parse("web.tft-study.net"),
                                  world_->measurement_web_address);
  world_->authorities.register_zone(world_->measurement_zone);

  world_->measurement_web = std::make_shared<http::OriginServer>("tft-measurement-web");
  // Probe landing page (DNS + monitoring experiments fetch "/").
  std::string probe_page =
      "<html><head><title>tft-probe-content</title></head><body>"
      "<h1>tft-probe-content</h1><p>reference landing page</p>";
  probe_page += "<!-- " + std::string(1600, 'P') + " -->";
  probe_page += "</body></html>";
  world_->measurement_web->set_default_handler([probe_page](const http::Request&) {
    return http::Response::make(200, "OK", probe_page);
  });
  // The four reference objects of §5.1, under any probe host.
  world_->probe_html_bytes = spec_.probe_html_bytes;
  world_->measurement_web->add_path_for_any_host(
      "/page.html",
      http::Response::make(200, "OK", http::reference_html(spec_.probe_html_bytes),
                           "text/html"));
  world_->measurement_web->add_path_for_any_host(
      "/image.simg",
      http::Response::make(200, "OK", http::reference_image(), "image/simg"));
  world_->measurement_web->add_path_for_any_host(
      "/library.js", http::Response::make(200, "OK", http::reference_javascript(),
                                          "application/javascript"));
  world_->measurement_web->add_path_for_any_host(
      "/style.css", http::Response::make(200, "OK", http::reference_css(), "text/css"));
  world_->web.add(world_->measurement_web_address, world_->measurement_web);

  // The SMTP extension's measurement mail server (mail.tft-study.net).
  world_->measurement_mail_address = Ipv4Address(198, 51, 100, 25);
  world_->measurement_mail = std::make_shared<smtp::SmtpServer>(
      smtp::SmtpServer::Config{"mail.tft-study.net", "TFT-SMTPD 1.0", true, true});
  world_->smtp.add(world_->measurement_mail_address, world_->measurement_mail);
  world_->measurement_zone->add_a(*dns::DnsName::parse("mail.tft-study.net"),
                                  world_->measurement_mail_address);
}

void WorldBuilder::build_google_dns() {
  const OrgId google =
      world_->topology.add_organization("Google", "US", OrgKind::kPublicDnsOperator);
  world_->topology.add_as(15169, google);
  world_->topology.announce(*Ipv4Prefix::parse("8.8.8.0/24"), 15169);
  // Anycast sites answer from several distinct egress netblocks, as in the
  // real service; the paper only ever observed its super proxy's site
  // (74.125.0.0/16).
  for (const char* block :
       {"74.125.0.0/16", "172.217.0.0/16", "173.194.0.0/16", "209.85.128.0/17"}) {
    const auto prefix = *Ipv4Prefix::parse(block);
    world_->topology.announce(prefix, 15169);
    world_->google_netblocks.push_back(prefix);
  }

  world_->google_dns =
      std::make_shared<dns::AnycastResolverGroup>(Ipv4Address(8, 8, 8, 8), "google");
  const int instances = std::max(2, spec_.google_anycast_instances);
  for (int i = 0; i < instances; ++i) {
    const auto& block =
        world_->google_netblocks[static_cast<std::size_t>(i) %
                                 world_->google_netblocks.size()];
    auto instance = std::make_shared<dns::RecursiveResolver>(
        Ipv4Address(8, 8, 8, 8),
        *block.host(256u * (1 + static_cast<std::uint32_t>(i) /
                                    world_->google_netblocks.size()) +
                    1),
        &world_->authorities, &world_->clock);
    instance->set_metrics(&world_->metrics);
    instance->set_recorder(&world_->recorder);
    world_->google_dns->add_instance(std::move(instance));
  }
  world_->resolvers.add_anycast(world_->google_dns);

  // What the paper's empirical step would find: the /16 containing the
  // super proxy's instance egress. The super proxy address is fixed
  // (proxy::SuperProxy::Config default), so resolve it here.
  const net::Ipv4Address super_proxy_egress =
      world_->google_dns->instance_for(proxy::SuperProxy::Config{}.address)
          .egress_address();
  world_->google_egress_block = *Ipv4Prefix::make(super_proxy_egress, 16);
}

void WorldBuilder::build_public_resolvers() {
  // Ad-tech hosting for landing pages not owned by an ISP.
  const std::size_t adtech =
      create_isp("TFT AdTech Hosting", "US", OrgKind::kHosting, {});
  std::uint32_t adtech_host = 80;
  const auto adtech_address = [&] {
    return *plan_->isps[adtech].prefixes[0].host(adtech_host++);
  };

  // Hijacking public resolver services (§4.3.2).
  for (const auto& service : spec_.public_resolver_hijackers) {
    const std::size_t isp = create_isp(service.operator_name, "US",
                                       OrgKind::kPublicDnsOperator, {});
    const Ipv4Address landing =
        create_ad_server(service.landing_host, adtech_address(), false);
    // Server counts scale with the population so each server keeps enough
    // users to clear the analysis thresholds.
    const int servers = std::max(1, scaled(service.servers));
    for (int i = 0; i < servers; ++i) {
      const Ipv4Address address = *plan_->isps[isp].prefixes[0].host(53 + i);
      create_resolver(address, dns::NxdomainHijackPolicy{landing, 60, 1.0});
      // Hijacking public resolvers are assigned to nodes later, explicitly,
      // so keep them out of the clean pool.
      public_hijack_services_[service.operator_name].push_back(address);
    }
  }

  // OpenDNS: a clean resolver DNS-wise (its cert interception is separate).
  const std::size_t opendns =
      create_isp("OpenDNS", "US", OrgKind::kPublicDnsOperator, {});
  (void)opendns;
  create_resolver(opendns_service_, std::nullopt);

  // The clean public-resolver population (paper: 1,110 public servers seen,
  // only 21 hijacking).
  const int operators = 12;
  std::vector<std::size_t> public_orgs;
  for (int i = 0; i < operators; ++i) {
    public_orgs.push_back(create_isp("Public DNS Operator " + std::to_string(i + 1),
                                     "US", OrgKind::kPublicDnsOperator, {}));
  }
  const int clean_count = std::max(4, scaled(spec_.clean_public_resolvers));
  for (int i = 0; i < clean_count; ++i) {
    const std::size_t isp = public_orgs[static_cast<std::size_t>(i) % public_orgs.size()];
    const Ipv4Address address =
        *plan_->isps[isp].prefixes[0].host(53 + static_cast<std::uint32_t>(i / operators) * 7);
    create_resolver(address, std::nullopt);
    plan_->clean_public_resolvers.push_back(address);
  }
}

void WorldBuilder::create_nodes(std::size_t isp, int count, bool force_isp_resolver,
                                double google_fraction, double public_fraction,
                                DnsHijackSource hijack_source,
                                std::string hijack_operator) {
  if (count <= 0) return;
  PlanIsp& plan_isp = plan_->isps[isp];
  IspState& state = isp_state_[isp];

  PlanRange range;
  range.begin = plan_->total_nodes;
  range.count = static_cast<std::uint32_t>(count);
  range.isp = static_cast<std::uint32_t>(isp);
  range.base_host = state.next_host[0];
  range.force_isp_resolver = force_isp_resolver;
  range.google_fraction = google_fraction;
  range.public_fraction = public_fraction;
  range.hijack_source = hijack_source;
  range.hijack_operator = plan_->intern(hijack_operator);

  // Advance the per-AS host cursors exactly as a per-node allocation loop
  // would have: node i lands on AS slot i % slots. The closed-form address
  // in NodePlan::facts assumes all slots start level, which holds because
  // every ISP gets exactly one create_nodes call.
  const std::size_t slots = plan_isp.asns.size();
  for (std::size_t s = 0; s < slots; ++s) {
    assert(state.next_host[s] == range.base_host);
    state.next_host[s] += static_cast<std::uint32_t>(
        (static_cast<std::size_t>(count) + slots - 1 - s) / slots);
  }

  plan_isp.ranges.push_back(static_cast<std::uint32_t>(plan_->ranges.size()));
  plan_->ranges.push_back(range);
  plan_->total_nodes += range.count;
  flags_.resize(plan_->total_nodes, 0);
  for (std::uint32_t j = 0; j < range.count; ++j) {
    const std::size_t index = range.begin + j;
    const NodePlan::Facts facts = plan_->facts(index);
    std::uint16_t flags = 0;
    if (facts.base_uses_google) flags |= kGoogle;
    if (facts.base_on_isp_resolver) flags |= kOnIsp;
    if (hijack_source != DnsHijackSource::kNone && !facts.base_uses_google) {
      flags |= kTruthDns;
    }
    flags_[index] = flags;
  }
}

void WorldBuilder::build_isps_and_nodes() {
  // Known real-world AS numbers for featured networks.
  static const std::map<std::string, std::vector<Asn>> kKnownAsns = {
      {"Deutsche Telekom AG", {3320}},
      {"Talk Talk", {43234, 13285, 9105, 43235, 13286}},
      {"Internet Rimon ISP", {42925}},
  };

  std::map<std::string, int> used_by_country;  // paper-scale node counts

  const auto known_asns = [&](const std::string& name) {
    const auto it = kKnownAsns.find(name);
    return it == kKnownAsns.end() ? std::vector<Asn>{} : it->second;
  };

  // 1. Table 4 ISPs: hijacking resolvers.
  for (const auto& entry : spec_.isp_resolver_hijackers) {
    std::vector<Asn> asns = known_asns(entry.isp);
    if (asns.empty() && entry.nodes > 1000) asns = {next_synthetic_asn_++, next_synthetic_asn_++};
    const std::size_t isp =
        create_isp(entry.isp, entry.country, OrgKind::kBroadbandIsp, asns);
    const Ipv4Address landing = create_ad_server(
        entry.landing_host, *plan_->isps[isp].prefixes[0].host(80), entry.shared_vendor_js);
    const int servers = std::max(1, scaled(entry.dns_servers));
    for (int i = 0; i < servers; ++i) {
      const Ipv4Address address =
          *plan_->isps[isp].prefixes[static_cast<std::size_t>(i) %
                                     plan_->isps[isp].prefixes.size()]
               .host(53 + static_cast<std::uint32_t>(i) * 16);
      create_resolver(address, dns::NxdomainHijackPolicy{landing, 60, 1.0});
      plan_->isps[isp].resolver_ips.push_back(address);
    }
    create_nodes(isp, scaled(entry.nodes), /*force_isp_resolver=*/true, 0, 0,
                 DnsHijackSource::kIspResolver, entry.isp);
    used_by_country[entry.country] += entry.nodes;
  }

  // 2. Named ISPs (Tiscali, Uzone, ...): clean resolvers.
  for (const auto& entry : spec_.named_isps) {
    std::vector<Asn> asns;
    for (int i = 0; i < entry.as_count; ++i) asns.push_back(next_synthetic_asn_++);
    const std::size_t isp = create_isp(entry.name, entry.country, entry.kind, asns);
    const Ipv4Address address = *plan_->isps[isp].prefixes[0].host(53);
    create_resolver(address, std::nullopt);
    plan_->isps[isp].resolver_ips.push_back(address);
    // Give named ISPs an elevated Google share so path hijackers targeting
    // their Google users (e.g. Uzone) have a population to hit.
    create_nodes(isp, scaled(entry.nodes), false, 0.08, 0.02, DnsHijackSource::kNone, {});
    used_by_country[entry.country] += entry.nodes;
  }

  // 3. Table 7 carriers: mobile ASes with image transcoders (interceptors
  //    attached in assign_http_modifiers).
  for (const auto& entry : spec_.transcoders) {
    const std::size_t isp =
        create_isp(entry.isp, entry.country, OrgKind::kMobileIsp, {entry.asn});
    const Ipv4Address address = *plan_->isps[isp].prefixes[0].host(53);
    create_resolver(address, std::nullopt);
    plan_->isps[isp].resolver_ips.push_back(address);
    // Floor the carrier populations: Table 7's smallest ASes (10-25 nodes
    // at paper scale) must stay measurable after down-scaling.
    const int nodes = std::max(scaled(entry.nodes), std::min(entry.nodes, 12));
    create_nodes(isp, nodes, false, 0.04, 0.02, DnsHijackSource::kNone, {});
    used_by_country[entry.country] += entry.nodes;
  }

  // 4. Filtering ISPs (Rimon).
  for (const auto& entry : spec_.isp_filters) {
    const std::size_t isp = create_isp(entry.isp, entry.country,
                                       OrgKind::kBroadbandIsp,
                                       entry.asn != 0 ? std::vector<Asn>{entry.asn}
                                                      : known_asns(entry.isp));
    const Ipv4Address address = *plan_->isps[isp].prefixes[0].host(53);
    create_resolver(address, std::nullopt);
    plan_->isps[isp].resolver_ips.push_back(address);
    create_nodes(isp, scaled(entry.nodes), false, 0.04, 0.02, DnsHijackSource::kNone, {});
    used_by_country[entry.country] += entry.nodes;
  }

  // 5. Country fill: generic ISPs up to the country total. The Table 3
  //    remainder (extra_hijacked_nodes) is spread THINLY: every generic
  //    resolver in the country hijacks a small per-subscriber fraction
  //    (deterministic per node), which reproduces §4.2's finding that most
  //    large ASes contain *some* hijacked nodes while no single generic
  //    server clears Table 4's >=90% reporting bar.
  for (const auto& country : spec_.countries) {
    const int generic_budget =
        std::max(0, country.total_nodes - used_by_country[country.code]);
    if (generic_budget <= 0) continue;
    const double hijack_fraction =
        std::min(0.85, static_cast<double>(country.extra_hijacked_nodes) /
                           std::max(1, generic_budget));
    // The hijack only bites for nodes that use the ISP resolver.
    const double isp_user_share = std::max(
        0.05, 1.0 - country.google_dns_fraction - country.public_dns_fraction);
    const double hijack_probability = std::min(1.0, hijack_fraction / isp_user_share);

    const int isp_count = std::max(1, country.isp_count);
    for (int i = 0; i < isp_count; ++i) {
      const int nodes = generic_budget / isp_count +
                        (i < generic_budget % isp_count ? 1 : 0);
      if (nodes <= 0) continue;
      std::vector<Asn> asns;
      for (int a = 0; a < std::max(1, country.ases_per_isp); ++a) {
        asns.push_back(next_synthetic_asn_++);
      }
      const std::string name = country.code + " ISP " + std::to_string(i + 1);
      const std::size_t isp =
          create_isp(name, country.code, OrgKind::kBroadbandIsp, asns);

      std::optional<dns::NxdomainHijackPolicy> policy;
      if (hijack_probability > 0) {
        const std::string slug =
            util::to_lower(country.code) + "-g" + std::to_string(i + 1);
        const Ipv4Address landing = create_ad_server(
            "dns-assist." + slug + ".example.net", *plan_->isps[isp].prefixes[0].host(80),
            false);
        policy = dns::NxdomainHijackPolicy{landing, 60, hijack_probability};
      }
      for (std::size_t r = 0; r < std::max<std::size_t>(1, asns.size() / 2); ++r) {
        const Ipv4Address address =
            *plan_->isps[isp].prefixes[r % plan_->isps[isp].prefixes.size()]
                 .host(53 + static_cast<std::uint32_t>(r) * 8);
        create_resolver(address, policy);
        plan_->isps[isp].resolver_ips.push_back(address);
      }
      create_nodes(isp, scaled(nodes), false, country.google_dns_fraction,
                   country.public_dns_fraction, DnsHijackSource::kNone, {});
      // Ground truth for the probabilistic hijack: the resolver's decision
      // is a deterministic function of the node's zID (stable_hijack_roll),
      // so the range records the probability and node_truth re-derives
      // exactly which nodes it affects. The flags must agree so later
      // phases' truth-none predicates see these nodes as hijacked.
      if (hijack_probability > 0) {
        PlanRange& range = plan_->ranges[plan_->isps[isp].ranges.back()];
        range.generic_hijack_probability = hijack_probability;
        range.generic_operator = plan_->intern(name);
        for (std::uint32_t j = 0; j < range.count; ++j) {
          const std::size_t index = range.begin + j;
          const std::uint16_t flags = flags_[index];
          if (flags & (kGoogle | kTruthDns)) continue;
          // Only nodes on this ISP's resolvers (not public-resolver users).
          if (!(flags & kOnIsp)) continue;
          if (proxy::stable_hijack_roll(plan_->zid(index)) < hijack_probability) {
            flags_[index] |= kTruthDns;
          }
        }
      }
    }
  }
}

std::size_t WorldBuilder::find_isp(std::string_view name,
                                   const CountryCode& country) const {
  for (std::size_t i = 0; i < plan_->isps.size(); ++i) {
    if (plan_->isps[i].name == name &&
        (country.empty() || plan_->isps[i].country == country)) {
      return i;
    }
  }
  return plan_->isps.size();
}

std::vector<std::size_t> WorldBuilder::pick_spread(
    std::string_view purpose, int count, int as_spread, int country_spread,
    const std::function<bool(std::size_t, std::uint32_t)>& predicate) {
  util::StreamRng rng(seed_, util::fnv1a64(purpose), "spread");
  // Group candidates by country, limit to `country_spread` countries, then
  // by AS limited to `as_spread` ASes, and deal round-robin across the
  // surviving AS pools. This reproduces the install-base footprints the
  // paper reports (e.g. TrendMicro: 734 ASes but only 13 countries).
  // Ranges are in creation order and contiguous, so this visits candidates
  // in exactly the old global node order.
  std::map<std::string, std::map<Asn, std::vector<std::size_t>>> by_country;
  for (const PlanRange& range : plan_->ranges) {
    const PlanIsp& isp = plan_->isps[range.isp];
    const std::size_t slots = isp.asns.size();
    for (std::uint32_t j = 0; j < range.count; ++j) {
      const std::size_t i = range.begin + j;
      if (!predicate(i, range.isp)) continue;
      by_country[isp.country][isp.asns[j % slots]].push_back(i);
    }
  }

  // Prefer the countries with the most candidates (stable), tie-broken by
  // name, then randomly drop down to the allowed spread.
  std::vector<std::string> countries;
  countries.reserve(by_country.size());
  for (const auto& [country, groups] : by_country) countries.push_back(country);
  std::sort(countries.begin(), countries.end(),
            [&](const std::string& a, const std::string& b) {
              std::size_t na = 0, nb = 0;
              for (const auto& [asn, v] : by_country[a]) na += v.size();
              for (const auto& [asn, v] : by_country[b]) nb += v.size();
              if (na != nb) return na > nb;
              return a < b;
            });
  if (country_spread > 0 &&
      countries.size() > static_cast<std::size_t>(country_spread)) {
    countries.resize(static_cast<std::size_t>(country_spread));
  }

  const int scaled_as_spread =
      std::max(1, static_cast<int>(std::llround(as_spread * scale_)));
  std::vector<std::vector<std::size_t>> pools;
  for (const auto& country : countries) {
    auto& groups = by_country[country];
    std::vector<std::vector<std::size_t>> country_pools;
    country_pools.reserve(groups.size());
    for (auto& [asn, indices] : groups) country_pools.push_back(std::move(indices));
    for (std::size_t i = country_pools.size(); i > 1; --i) {
      std::swap(country_pools[i - 1], country_pools[rng.index(i)]);
    }
    // Per-country AS budget proportional to the overall as_spread.
    const std::size_t budget = std::max<std::size_t>(
        1, static_cast<std::size_t>(scaled_as_spread) / countries.size() + 1);
    if (country_pools.size() > budget) country_pools.resize(budget);
    for (auto& pool : country_pools) pools.push_back(std::move(pool));
  }
  for (std::size_t i = pools.size(); i > 1; --i) {
    std::swap(pools[i - 1], pools[rng.index(i)]);
  }

  std::vector<std::size_t> picked;
  std::size_t cursor = 0;
  while (static_cast<int>(picked.size()) < count && !pools.empty()) {
    const std::size_t slot = cursor % pools.size();
    auto& pool = pools[slot];
    if (pool.empty()) {
      pools.erase(pools.begin() + static_cast<std::ptrdiff_t>(slot));
      continue;
    }
    picked.push_back(pool.back());
    pool.pop_back();
    ++cursor;
  }
  return picked;
}

void WorldBuilder::assign_public_hijack_users() {
  for (const auto& service : spec_.public_resolver_hijackers) {
    const auto& services = public_hijack_services_[service.operator_name];
    assert(!services.empty());
    const auto picked = pick_spread(
        "public-hijack|" + service.operator_name, scaled(service.nodes), 20, 5,
        [&](std::size_t i, std::uint32_t) {
          return !(flags_[i] & (kTruthDns | kGoogle));
        });
    for (std::size_t i = 0; i < picked.size(); ++i) {
      NodeOverlay& o = overlay(picked[i]);
      o.has_resolver = true;
      o.resolver = services[i % services.size()];
      o.uses_google = 0;
      o.truth_dns_set = true;
      o.truth_dns = DnsHijackSource::kPublicResolver;
      o.truth_dns_operator = plan_->intern(service.operator_name);
      flags_[picked[i]] |= kTruthDns;
    }
  }
}

void WorldBuilder::assign_path_and_host_dns_hijackers() {
  std::uint32_t adtech_host = 180;
  const std::size_t adtech = find_isp("TFT AdTech Hosting", "US");

  for (const auto& entry : spec_.path_hijackers) {
    const std::size_t isp = find_isp(entry.isp, entry.country);
    if (isp >= plan_->isps.size()) continue;
    // The landing server may already exist (resolver hijacker of the same
    // ISP); reuse it through a fresh rewriter either way.
    const Ipv4Address landing = create_ad_server(
        entry.landing_host, *plan_->isps[adtech].prefixes[0].host(adtech_host++), false);
    const std::uint32_t rewriter = add_dns_shared(
        std::make_shared<middlebox::NxdomainRewriter>(
            middlebox::NxdomainRewriter::Config{entry.isp + " path middlebox",
                                                landing, 1.0, 60}));
    const std::uint32_t isp_index = static_cast<std::uint32_t>(isp);
    // Prefer Google-DNS users of the ISP (that is where the paper can see
    // path hijacking); convert clean ISP-resolver users if too few.
    auto picked = pick_spread("path-hijack|" + entry.isp,
                              scaled(entry.google_dns_nodes), entry.as_spread, 1,
                              [&](std::size_t i, std::uint32_t node_isp) {
                                return node_isp == isp_index && (flags_[i] & kGoogle);
                              });
    const int deficit = scaled(entry.google_dns_nodes) - static_cast<int>(picked.size());
    if (deficit > 0) {
      // Not enough Google-DNS users: some subscribers of this ISP (even of
      // ISPs whose own resolvers hijack) configured 8.8.8.8 themselves —
      // convert a few, clearing any resolver-level hijack truth.
      for (const auto extra : pick_spread(
               "path-hijack-extra|" + entry.isp, deficit, entry.as_spread, 1,
               [&](std::size_t i, std::uint32_t node_isp) {
                 return node_isp == isp_index && !(flags_[i] & kGoogle);
               })) {
        NodeOverlay& o = overlay(extra);
        o.has_resolver = true;
        o.resolver = Ipv4Address(8, 8, 8, 8);
        o.uses_google = 1;
        o.truth_dns_set = true;
        o.truth_dns = DnsHijackSource::kNone;
        o.truth_dns_operator = 0;
        flags_[extra] = static_cast<std::uint16_t>(
            (flags_[extra] & ~kTruthDns) | kGoogle);
        picked.push_back(extra);
      }
    }
    for (const auto index : picked) {
      NodeOverlay& o = overlay(index);
      o.tokens.push_back(plan_token(PlanTokenKind::kDnsShared, rewriter));
      flags_[index] |= kDnsItc;
      // Path boxes fire regardless of resolver; for resolver-hijacked nodes
      // the resolver wins first, so only record truth for clean-DNS nodes.
      if (!(flags_[index] & kTruthDns)) {
        o.truth_dns_set = true;
        o.truth_dns = DnsHijackSource::kPathMiddlebox;
        o.truth_dns_operator = plan_->intern(entry.isp);
        flags_[index] |= kTruthDns;
      }
    }
  }

  // Scattered CPE-level hijacking: small per-ISP clusters, each with its
  // own landing host (below Table 5's reporting threshold).
  if (spec_.scattered_google_hijack_nodes > 0) {
    const auto picked = pick_spread(
        "scattered-cpe", scaled(spec_.scattered_google_hijack_nodes), 120, 40,
        [&](std::size_t i, std::uint32_t) {
          const std::uint16_t flags = flags_[i];
          return (flags & kGoogle) && !(flags & kTruthDns) && !(flags & kDnsItc);
        });
    std::map<std::uint32_t, std::uint32_t> per_isp;  // isp -> dns_shared id
    for (const auto index : picked) {
      const std::uint32_t isp = plan_->range_of(index).isp;
      const auto [it, inserted] = per_isp.try_emplace(isp, 0);
      if (inserted) {
        const std::string slug = "cpe-" + std::to_string(isp);
        const Ipv4Address landing = create_ad_server(
            "dns-helper." + slug + ".example.net",
            *plan_->isps[adtech].prefixes[0].host(adtech_host++), false);
        it->second = add_dns_shared(std::make_shared<middlebox::NxdomainRewriter>(
            middlebox::NxdomainRewriter::Config{plan_->isps[isp].name + " CPE box",
                                                landing, 1.0, 60}));
      }
      NodeOverlay& o = overlay(index);
      o.tokens.push_back(plan_token(PlanTokenKind::kDnsShared, it->second));
      o.truth_dns_set = true;
      o.truth_dns = DnsHijackSource::kPathMiddlebox;
      o.truth_dns_operator = plan_->intern(plan_->isps[isp].name + " CPE box");
      flags_[index] |= kDnsItc | kTruthDns;
    }
  }

  for (const auto& entry : spec_.host_dns_hijackers) {
    const Ipv4Address landing = create_ad_server(
        entry.landing_host, *plan_->isps[adtech].prefixes[0].host(adtech_host++), false);
    const std::uint32_t rewriter = add_dns_shared(
        std::make_shared<middlebox::NxdomainRewriter>(
            middlebox::NxdomainRewriter::Config{entry.product, landing, 1.0, 60}));
    const auto picked = pick_spread(
        "host-dns|" + entry.product, scaled(entry.nodes), entry.as_spread,
        entry.country_spread, [&](std::size_t i, std::uint32_t) {
          const std::uint16_t flags = flags_[i];
          return (flags & kGoogle) && !(flags & kTruthDns) && !(flags & kDnsItc);
        });
    for (const auto index : picked) {
      NodeOverlay& o = overlay(index);
      o.tokens.push_back(plan_token(PlanTokenKind::kDnsShared, rewriter));
      o.truth_dns_set = true;
      o.truth_dns = DnsHijackSource::kHostSoftware;
      o.truth_dns_operator = plan_->intern(entry.product);
      flags_[index] |= kDnsItc | kTruthDns;
    }
  }
}

void WorldBuilder::assign_http_modifiers() {
  const auto boosted = [&](int nodes) {
    return scaled(static_cast<int>(nodes * spec_.adware_install_boost));
  };

  // Host adware (Table 6).
  for (const auto& entry : spec_.adware) {
    const std::uint32_t injector = add_http_shared(
        std::make_shared<middlebox::HtmlInjector>(
            middlebox::HtmlInjector::Config{entry.name, entry.snippet, 1024, 1.0}));
    const auto picked =
        pick_spread("adware|" + entry.name, boosted(entry.nodes), entry.as_spread,
                    entry.country_spread, [&](std::size_t i, std::uint32_t) {
                      return !(flags_[i] & kHtmlInj);
                    });
    for (const auto index : picked) {
      NodeOverlay& o = overlay(index);
      o.tokens.push_back(plan_token(PlanTokenKind::kHttpPre, injector));
      o.truth_html_injector = plan_->intern(entry.name);
      flags_[index] |= kHtmlInj | kHttpItc;
    }
  }

  // ISP filters (Rimon/NetSpark): every node of the AS.
  for (const auto& entry : spec_.isp_filters) {
    const std::size_t isp = find_isp(entry.isp, entry.country);
    if (isp >= plan_->isps.size()) continue;
    const std::uint32_t injector = add_http_shared(
        std::make_shared<middlebox::HtmlInjector>(
            middlebox::HtmlInjector::Config{entry.isp + " NetSpark filter",
                                            entry.snippet, 0, 1.0}));
    const std::uint32_t truth = plan_->intern(entry.isp + " NetSpark filter");
    for (const std::uint32_t ri : plan_->isps[isp].ranges) {
      const PlanRange& range = plan_->ranges[ri];
      for (std::uint32_t j = 0; j < range.count; ++j) {
        const std::size_t index = range.begin + j;
        NodeOverlay& o = overlay(index);
        o.tokens.push_back(plan_token(PlanTokenKind::kHttpPre, injector));
        o.truth_html_injector = truth;  // overwrites, as the filter governs
        flags_[index] |= kHtmlInj | kHttpItc;
      }
    }
  }

  // Mobile transcoders (Table 7): per-node quality drawn from the carrier's
  // quality set; fraction models per-plan deployment. Membership and quality
  // are re-derived per node from its keyed "transcode" stream, so only the
  // instance table and the range tag are stored.
  for (const auto& entry : spec_.transcoders) {
    const std::size_t isp = find_isp(entry.isp, entry.country);
    if (isp >= plan_->isps.size()) continue;
    NodePlan::Transcoder plan_transcoder;
    plan_transcoder.fraction = entry.fraction;
    for (const int quality : entry.qualities) {
      plan_transcoder.per_quality.push_back(
          std::make_shared<middlebox::ImageTranscoder>(
              middlebox::ImageTranscoder::Config{
                  entry.isp + " transcoder q" + std::to_string(quality),
                  static_cast<std::uint8_t>(quality), 1.0}));
    }
    plan_->transcoders.push_back(std::move(plan_transcoder));
    const std::uint32_t tag = static_cast<std::uint32_t>(plan_->transcoders.size());
    for (const std::uint32_t ri : plan_->isps[isp].ranges) {
      PlanRange& range = plan_->ranges[ri];
      range.transcoder = tag;
      for (std::uint32_t j = 0; j < range.count; ++j) {
        const std::size_t index = range.begin + j;
        util::StreamRng stream(seed_, util::fnv1a64(plan_->zid(index)), "transcode");
        if (stream.chance(entry.fraction)) flags_[index] |= kHttpItc;
      }
    }
  }

  // Block pages and JS/CSS error replacement (§5.2 residue).
  const std::uint32_t blocker = add_http_shared(
      std::make_shared<middlebox::ContentBlocker>(middlebox::ContentBlocker::Config{
          "bandwidth-cap",
          "<html><body><h1>Bandwidth exceeded</h1><p>blocked</p></body></html>", 403}));
  for (const auto index :
       pick_spread("blockpage", boosted(spec_.blockpage_nodes), 10, 5,
                   [&](std::size_t i, std::uint32_t) {
                     return !(flags_[i] & kHttpItc);
                   })) {
    NodeOverlay& o = overlay(index);
    o.tokens.push_back(plan_token(PlanTokenKind::kHttpPost, blocker));
    o.truth_content_blocker = plan_->intern("bandwidth-cap");
    flags_[index] |= kHttpItc | kBlocker;
  }
  const std::uint32_t js_replacer = add_http_shared(
      std::make_shared<middlebox::ObjectReplacer>(middlebox::ObjectReplacer::Config{
          "js-error-box", "javascript", "<html><body>error</body></html>", 200}));
  for (const auto index :
       pick_spread("js-error", boosted(spec_.js_error_nodes), 20, 10,
                   [&](std::size_t i, std::uint32_t) {
                     return !(flags_[i] & (kHttpItc | kBlocker));
                   })) {
    NodeOverlay& o = overlay(index);
    o.tokens.push_back(plan_token(PlanTokenKind::kHttpPost, js_replacer));
    o.truth_object_replacer = plan_->intern("js-error-box");
    flags_[index] |= kHttpItc | kObjRepl;
  }
  const std::uint32_t css_replacer = add_http_shared(
      std::make_shared<middlebox::ObjectReplacer>(
          middlebox::ObjectReplacer::Config{"css-error-box", "css", "", 200}));
  for (const auto index :
       pick_spread("css-error", boosted(spec_.css_error_nodes), 8, 4,
                   [&](std::size_t i, std::uint32_t) {
                     return !(flags_[i] & (kHttpItc | kBlocker | kObjRepl));
                   })) {
    NodeOverlay& o = overlay(index);
    o.tokens.push_back(plan_token(PlanTokenKind::kHttpPost, css_replacer));
    o.truth_object_replacer = plan_->intern("css-error-box");
    flags_[index] |= kHttpItc | kObjRepl;
  }
}

void WorldBuilder::build_https_sites() {
  const sim::Instant not_before = sim::Instant::epoch() - sim::Duration::hours(24 * 365);
  const sim::Instant not_after = sim::Instant::epoch() + sim::Duration::hours(24 * 365 * 5);

  // Public web PKI: three roots, one intermediate in use.
  cas_.reserve(8);
  for (int i = 0; i < 3; ++i) {
    cas_.push_back(tls::CertificateAuthority::make_root(
        tls::DistinguishedName{"TFT Global Root CA " + std::to_string(i + 1),
                               "TFT Trust Services", "US"},
        util::fnv1a64("root-ca-" + std::to_string(i)), not_before, not_after));
    world_->public_roots.add(cas_[static_cast<std::size_t>(i)].certificate());
  }
  cas_.push_back(tls::CertificateAuthority::make_intermediate(
      cas_[0], tls::DistinguishedName{"TFT TLS Issuing CA", "TFT Trust Services", "US"},
      util::fnv1a64("issuing-ca")));
  site_ca_ = &cas_.back();

  const std::size_t hosting = create_isp("TFT Web Hosting", "US", OrgKind::kHosting, {});
  std::uint32_t host_index = 100;
  const auto new_site_address = [&] {
    return *plan_->isps[hosting].prefixes[0].host(host_index++);
  };

  const auto add_site = [&](const std::string& host, HttpsSite::Class site_class,
                            HttpsSite::InvalidKind invalid_kind,
                            const CountryCode& country) {
    HttpsSite site;
    site.host = host;
    site.address = new_site_address();
    site.site_class = site_class;
    site.invalid_kind = invalid_kind;
    site.country = country;

    tls::CertificateAuthority::LeafOptions options;
    options.hosts = {host};
    switch (invalid_kind) {
      case HttpsSite::InvalidKind::kNone:
        site.genuine_chain = site_ca_->chain_for(site_ca_->issue(options));
        break;
      case HttpsSite::InvalidKind::kSelfSigned: {
        tls::Certificate leaf;
        leaf.subject = tls::DistinguishedName{host, "Self Signed", "US"};
        leaf.issuer = leaf.subject;
        leaf.serial = 1;
        leaf.not_before = not_before;
        leaf.not_after = not_after;
        leaf.subject_alt_names = {host};
        leaf.public_key = util::fnv1a64("self-signed|" + host);
        leaf.signed_by = leaf.public_key;
        site.genuine_chain = {leaf};
        break;
      }
      case HttpsSite::InvalidKind::kExpired:
        options.not_before = sim::Instant::epoch() - sim::Duration::hours(24 * 730);
        options.not_after = sim::Instant::epoch() - sim::Duration::hours(24);
        site.genuine_chain = site_ca_->chain_for(site_ca_->issue(options));
        break;
      case HttpsSite::InvalidKind::kWrongCommonName:
        options.hosts = {"wrong-host.example.net"};
        options.subject_override =
            tls::DistinguishedName{"wrong-host.example.net", "TFT Study", "US"};
        site.genuine_chain = site_ca_->chain_for(site_ca_->issue(options));
        break;
    }

    auto server = std::make_shared<tls::TlsServer>(host);
    server->set_default_chain(site.genuine_chain);
    world_->tls_endpoints.add(site.address, server);
    world_->https_sites.push_back(std::move(site));
  };

  // Per-country popular sites (Alexa stand-in), limited to the countries
  // the paper had rankings for.
  int countries_done = 0;
  for (const auto& country : spec_.countries) {
    if (countries_done >= spec_.https.countries_with_rankings) break;
    ++countries_done;
    for (int i = 0; i < spec_.https.popular_sites_per_country; ++i) {
      add_site("www.top" + std::to_string(i + 1) + "." +
                   util::to_lower(country.code) + ".tft-popular.net",
               HttpsSite::Class::kPopular, HttpsSite::InvalidKind::kNone, country.code);
    }
  }
  for (const auto& university : spec_.https.universities) {
    add_site(university, HttpsSite::Class::kUniversity, HttpsSite::InvalidKind::kNone,
             "US");
  }
  add_site("self-signed.tft-study.net", HttpsSite::Class::kInvalid,
           HttpsSite::InvalidKind::kSelfSigned, "US");
  add_site("expired.tft-study.net", HttpsSite::Class::kInvalid,
           HttpsSite::InvalidKind::kExpired, "US");
  add_site("wrong-cn.tft-study.net", HttpsSite::Class::kInvalid,
           HttpsSite::InvalidKind::kWrongCommonName, "US");
}

void WorldBuilder::assign_cert_replacers() {
  // Block list for content filters: the top-10 popular sites of every
  // country (so filter users everywhere have blockable sites in their
  // per-country scan list; detection needs the random phase-1 pick to land
  // on a blocked site).
  std::unordered_set<std::string> blocked_hosts;
  for (const auto& site : world_->https_sites) {
    if (site.site_class != HttpsSite::Class::kPopular) continue;
    for (int i = 1; i <= 10; ++i) {
      if (site.host.starts_with("www.top" + std::to_string(i) + ".")) {
        blocked_hosts.insert(site.host);
      }
    }
  }

  for (const auto& spec : spec_.cert_replacers) {
    tls::ForgeProfile forge;
    forge.issuer = tls::DistinguishedName{spec.issuer_cn, spec.product, "US"};
    forge.signing_key = util::fnv1a64("product-ca|" + spec.product);
    forge.reuse_public_key = spec.reuse_public_key;
    if (spec.untrusted_issuer_for_invalid) {
      forge.untrusted_issuer = tls::DistinguishedName{
          spec.issuer_cn + " (untrusted)", spec.product, "US"};
    }
    forge.copy_subject_fields = spec.kind == CertReplacerSpec::Kind::kMalware;

    middlebox::CertReplacer::Config config;
    config.name = spec.product;
    config.forge = forge;
    config.only_if_upstream_valid = spec.only_if_upstream_valid;
    if (spec.only_blocked_hosts) config.only_hosts = blocked_hosts;
    // Products that distinguish valid/invalid upstreams need to verify.
    if (spec.untrusted_issuer_for_invalid || spec.only_if_upstream_valid) {
      config.public_roots = &world_->public_roots;
    }
    plan_->tls_configs.push_back(std::move(config));
    const std::uint32_t tls_id =
        static_cast<std::uint32_t>(plan_->tls_configs.size() - 1);
    std::uint32_t injector_id = 0;
    if (spec.also_injects_html) {
      plan_->injector_configs.push_back(middlebox::HtmlInjector::Config{
          spec.product + " injector",
          "\n<script src=\"http://cloudguard.me/inject.js\"></script>\n", 1024,
          1.0});
      injector_id = static_cast<std::uint32_t>(plan_->injector_configs.size() - 1);
    }

    const auto only_country = spec.only_country;
    // Floor the small products (McAfee: 6 nodes at paper scale) so every
    // Table 8 issuer stays detectable after down-scaling.
    const int installs = std::max(scaled(spec.nodes), std::min(spec.nodes, 5));
    const auto picked = pick_spread(
        "cert-replacer|" + spec.product, installs, 200, 50,
        [&](std::size_t i, std::uint32_t isp) {
          if (only_country && plan_->isps[isp].country != *only_country) return false;
          return !(flags_[i] & kCert);
        });
    for (const auto index : picked) {
      NodeOverlay& o = overlay(index);
      o.tokens.push_back(plan_token(PlanTokenKind::kTlsConfig, tls_id));
      o.truth_cert_replacer = plan_->intern(spec.product);
      flags_[index] |= kCert;
      if (spec.product == "OpenDNS") {
        o.has_resolver = true;
        o.resolver = opendns_service_;
        o.uses_google = 0;
        flags_[index] &= static_cast<std::uint16_t>(~kGoogle);
      }
      if (spec.also_injects_html) {
        o.tokens.push_back(
            plan_token(PlanTokenKind::kHttpInjectorConfig, injector_id));
        flags_[index] |= kHttpItc;
        if (!(flags_[index] & kHtmlInj)) {
          o.truth_html_injector = plan_->intern(spec.product + " injector");
          flags_[index] |= kHtmlInj;
        }
      }
    }
  }
}

void WorldBuilder::assign_monitors() {
  const auto build_profile = [&](const MonitorSpec& spec,
                                 const std::vector<Ipv4Address>& sources) {
    middlebox::MonitorProfile profile;
    profile.name = spec.entity;
    profile.source_addresses = sources;
    profile.user_agent = spec.entity + " content-scanner/1.0";
    for (const auto& refetch : spec.refetches) {
      middlebox::RefetchSpec out;
      out.min_delay_s = refetch.min_delay_s;
      out.max_delay_s = refetch.max_delay_s;
      out.prefetch_probability = refetch.prefetch_probability;
      out.hold_s = refetch.hold_s;
      if (refetch.fixed_source_last) out.source_index = 0;
      profile.refetches.push_back(out);
    }
    profile.probability = 1.0;
    return profile;
  };

  for (const auto& spec : spec_.monitors) {
    const OrgKind kind = spec.kind == MonitorSpec::Kind::kVpn
                             ? OrgKind::kVpnProvider
                             : OrgKind::kSecurityVendor;
    std::size_t isp;
    if (spec.kind == MonitorSpec::Kind::kIspService) {
      isp = find_isp(spec.isp, "");
      if (isp >= plan_->isps.size()) continue;
    } else {
      isp = create_isp(spec.entity, spec.home_country, kind, {});
    }

    // IP pools are kept at paper scale (they cost nothing) so Table 9's IP
    // column is directly comparable.
    std::vector<Ipv4Address> sources;
    for (int i = 0; i < std::max(1, spec.source_ips); ++i) {
      sources.push_back(
          *plan_->isps[isp].prefixes[0].host(10 + static_cast<std::uint32_t>(i)));
    }
    const std::uint32_t monitor_id = add_http_shared(
        std::make_shared<middlebox::ContentMonitor>(build_profile(spec, sources)));

    std::vector<std::size_t> picked;
    if (spec.kind == MonitorSpec::Kind::kIspService) {
      for (const std::uint32_t ri : plan_->isps[isp].ranges) {
        const PlanRange& range = plan_->ranges[ri];
        for (std::uint32_t j = 0; j < range.count; ++j) {
          const std::size_t index = range.begin + j;
          if (flags_[index] & kBlocker) continue;
          if (flags_[index] & kMonitor) continue;  // one monitor per node
          util::StreamRng stream(
              seed_,
              util::hash_combine(util::fnv1a64(plan_->zid(index)),
                                 util::fnv1a64(spec.entity)),
              "monitor");
          if (stream.chance(spec.isp_node_fraction)) picked.push_back(index);
        }
      }
    } else {
      picked = pick_spread("monitor|" + spec.entity, scaled(spec.nodes),
                           spec.as_spread, spec.country_spread,
                           [&](std::size_t i, std::uint32_t) {
                             return !(flags_[i] & (kMonitor | kBlocker));
                           });
    }

    std::uint32_t vpn_id = 0;
    bool has_vpn = false;
    if (spec.kind == MonitorSpec::Kind::kVpn) {
      // Ten VPN egress locations, distinct from the scanner addresses.
      std::vector<Ipv4Address> egress;
      for (std::uint32_t i = 0; i < 10; ++i) {
        egress.push_back(*plan_->isps[isp].prefixes[0].host(2000 + i));
      }
      vpn_id = add_http_shared(std::make_shared<middlebox::VpnEgressRewriter>(
          spec.entity + " VPN", std::move(egress)));
      has_vpn = true;
    }

    for (const auto index : picked) {
      NodeOverlay& o = overlay(index);
      // Monitors observe the request before any blocker can short-circuit
      // it (host software sees the URL even when a downstream box blocks).
      o.monitor = monitor_id + 1;
      if (has_vpn) {
        o.vpn = vpn_id + 1;
        o.uses_vpn = true;
      }
      o.truth_monitor = plan_->intern(spec.entity);
      flags_[index] |= kMonitor | kHttpItc;
    }
  }

  // Long tail: many small monitoring groups (the rest of the "54 groups").
  if (spec_.tail_monitor_groups > 0 && spec_.tail_monitor_nodes > 0) {
    const int per_group =
        std::max(1, scaled(spec_.tail_monitor_nodes) / spec_.tail_monitor_groups);
    for (int g = 0; g < spec_.tail_monitor_groups; ++g) {
      const std::size_t isp =
          create_isp("Monitor Tail " + std::to_string(g + 1), "US",
                     OrgKind::kSecurityVendor, {});
      MonitorSpec tail;
      tail.entity = "Monitor Tail " + std::to_string(g + 1);
      tail.refetches = {MonitorSpec::Refetch{5, 3600, 0, 0, false}};
      const std::uint32_t monitor_id = add_http_shared(
          std::make_shared<middlebox::ContentMonitor>(
              build_profile(tail, {*plan_->isps[isp].prefixes[0].host(10)})));
      for (const auto index :
           pick_spread("monitor-tail|" + tail.entity, per_group, 5, 3,
                       [&](std::size_t i, std::uint32_t) {
                         return !(flags_[i] & (kMonitor | kBlocker));
                       })) {
        NodeOverlay& o = overlay(index);
        o.monitor = monitor_id + 1;
        o.truth_monitor = plan_->intern(tail.entity);
        flags_[index] |= kMonitor | kHttpItc;
      }
    }
  }
}

void WorldBuilder::assign_smtp_interceptors() {
  for (const auto& spec : spec_.smtp_interceptors) {
    std::shared_ptr<smtp::SmtpInterceptor> interceptor;
    switch (spec.kind) {
      case SmtpInterceptSpec::Kind::kStripStarttls:
        interceptor = std::make_shared<smtp::StarttlsStripper>(spec.name);
        break;
      case SmtpInterceptSpec::Kind::kBlockPort:
        interceptor = std::make_shared<smtp::PortBlocker>(spec.name);
        break;
      case SmtpInterceptSpec::Kind::kRewriteBanner:
        interceptor = std::make_shared<smtp::BannerRewriter>(
            spec.name, "mail-gateway ESMTP ready");
        break;
      case SmtpInterceptSpec::Kind::kTagBody:
        interceptor = std::make_shared<smtp::BodyTagger>(
            spec.name, "-- scanned by " + spec.name);
        break;
    }
    plan_->smtp_shared.push_back(std::move(interceptor));
    const std::uint32_t id =
        static_cast<std::uint32_t>(plan_->smtp_shared.size() - 1);
    for (const auto index :
         pick_spread("smtp|" + spec.name, scaled(spec.nodes), spec.as_spread,
                     spec.country_spread, [&](std::size_t i, std::uint32_t) {
                       return !(flags_[i] & kSmtp);
                     })) {
      NodeOverlay& o = overlay(index);
      o.tokens.push_back(plan_token(PlanTokenKind::kSmtpShared, id));
      o.truth_smtp = plan_->intern(spec.name);
      o.truth_smtp_kind = plan_->intern(std::string(to_string(spec.kind)));
      flags_[index] |= kSmtp;
    }
  }
}

void WorldBuilder::finalize(std::size_t lazy_shards) {
  proxy::Environment environment;
  environment.resolvers = &world_->resolvers;
  environment.web = &world_->web;
  environment.tls = &world_->tls_endpoints;
  environment.smtp = &world_->smtp;
  environment.clock = &world_->clock;
  environment.topology = &world_->topology;
  environment.metrics = &world_->metrics;
  environment.recorder = &world_->recorder;

  proxy::SuperProxy::Config proxy_config;
  proxy_config.allow_arbitrary_ports = spec_.arbitrary_port_overlay;
  // The overlay's node-pick / client-port streams are keyed off the study
  // seed: worlds built from different seeds route differently, worlds built
  // from the same seed route identically.
  proxy_config.stream_seed = util::stream_seed(seed_, 0, "super-proxy");
  world_->luminati = std::make_unique<proxy::SuperProxy>(proxy_config, environment);

  for (const auto& isp : plan_->isps) {
    if (!isp.resolver_ips.empty()) {
      world_->isp_resolvers[isp.name] = isp.resolver_ips;
    }
  }

  plan_->node_failure_probability = spec_.node_failure_probability;
  plan_->seal();
  // Planning state served its purpose; from here every per-node question is
  // answered by regenerating the node from the plan.
  flags_.clear();
  flags_.shrink_to_fit();

  if (lazy_shards > 0) {
    // Lazy population: the proxy materializes nodes on demand with a
    // resident ceiling of one shard. Ground truth stays plan-derived too —
    // world_->truth is only pre-filled on the materialized path (validate
    // and describe walk the resident table, which is empty here).
    world_->lazy_population = true;
    world_->luminati->set_node_source(
        std::make_shared<PlanNodeSource>(plan_, environment), lazy_shards);
  } else {
    for (std::size_t i = 0; i < plan_->node_count(); ++i) {
      proxy::ExitNodeAgent::Config config = plan_->node_config(i);
      world_->truth.node(config.zid) = plan_->node_truth(i);
      world_->luminati->add_exit_node(
          std::make_shared<proxy::ExitNodeAgent>(std::move(config), environment));
    }
  }

  record_world_gauges();
}

void WorldBuilder::record_world_gauges() {
  // Deterministic arithmetic model of the world's resident footprint: entity
  // counts times fixed per-entity cost constants (chosen once, documented
  // here), never sizeof() — the numbers must be byte-identical across
  // platforms and jobs because gauges land in the deterministic metrics
  // section. Real wall-clock memory (peak RSS) is reported separately under
  // `timing` by tft-study.
  obs::Registry& metrics = world_->metrics;
  const std::int64_t nodes = static_cast<std::int64_t>(plan_->node_count());
  const std::int64_t isps = static_cast<std::int64_t>(plan_->isps.size());
  const std::int64_t resolvers =
      static_cast<std::int64_t>(world_->resolvers.unicast_count() +
                                world_->resolvers.anycast_count());
  const std::int64_t ases =
      static_cast<std::int64_t>(world_->topology.as_count());
  const std::int64_t orgs =
      static_cast<std::int64_t>(world_->topology.organization_count());
  const std::int64_t prefixes =
      static_cast<std::int64_t>(world_->topology.announced_prefix_count());
  const std::int64_t sites =
      static_cast<std::int64_t>(world_->https_sites.size());
  metrics.set_gauge("world.nodes", nodes);
  metrics.set_gauge("world.isps", isps);
  metrics.set_gauge("world.resolvers", resolvers);
  metrics.set_gauge("world.ases", ases);
  metrics.set_gauge("world.https_sites", sites);
  // Per-entity byte constants: node agent (config + interceptor chains +
  // truth entry) 512B, AS/org/prefix table rows 64B each, resolver
  // (zone-walk state + cache headroom) 4096B.
  metrics.set_gauge("world.bytes.nodes", nodes * 512);
  metrics.set_gauge("world.bytes.topology", (ases + orgs + prefixes) * 64);
  metrics.set_gauge("world.bytes.resolver_tables", resolvers * 4096);
  metrics.set_gauge("world.bytes.total",
                    nodes * 512 + (ases + orgs + prefixes) * 64 +
                        resolvers * 4096);
}

std::unique_ptr<World> WorldBuilder::build(std::size_t lazy_shards) {
  build_measurement_infrastructure();
  build_google_dns();
  build_public_resolvers();
  build_isps_and_nodes();
  assign_public_hijack_users();
  assign_path_and_host_dns_hijackers();
  assign_http_modifiers();
  build_https_sites();
  assign_cert_replacers();
  assign_monitors();
  assign_smtp_interceptors();
  finalize(lazy_shards);
  return std::move(world_);
}

}  // namespace

std::unique_ptr<World> build_world(const WorldSpec& spec, double scale,
                                   std::uint64_t seed) {
  assert(scale > 0);
  return WorldBuilder(spec, scale, seed).build(0);
}

std::unique_ptr<World> build_world_lazy(const WorldSpec& spec, double scale,
                                        std::uint64_t seed, std::size_t shards) {
  assert(scale > 0);
  return WorldBuilder(spec, scale, seed).build(std::max<std::size_t>(1, shards));
}

}  // namespace tft::world
