// Recursive resolvers, anycast groups, and the resolver directory.
//
// A RecursiveResolver answers stub queries by consulting the authority
// registry with its *egress* address (which is what the authoritative
// server's log records — the basis of the paper's resolver identification).
// Resolvers may carry an NXDOMAIN-hijack policy, modeling ISP "search
// assist" resolvers and hijacking public resolvers.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tft/dns/authoritative.hpp"
#include "tft/dns/message.hpp"
#include "tft/net/ipv4.hpp"
#include "tft/sim/event_queue.hpp"

namespace tft::obs {
class Recorder;
class Registry;
}

namespace tft::dns {

/// Finds the authoritative server for a name (longest matching zone).
class AuthorityRegistry {
 public:
  void register_zone(std::shared_ptr<AuthoritativeServer> server);
  AuthoritativeServer* find(const DnsName& name) const;
  std::size_t zone_count() const noexcept { return zones_.size(); }

 private:
  std::vector<std::shared_ptr<AuthoritativeServer>> zones_;
};

/// NXDOMAIN rewriting configuration (§4): instead of passing the NXDOMAIN
/// through, answer with an A record pointing at `redirect_address` (an ad /
/// search-assist web server).
struct NxdomainHijackPolicy {
  net::Ipv4Address redirect_address;
  std::uint32_t ttl = 60;
  /// Fraction of NXDOMAIN responses rewritten (1.0 = always). Some ISPs
  /// hijack probabilistically or per-subscriber-plan.
  double probability = 1.0;
};

class RecursiveResolver {
 public:
  /// `service_address` is what stubs configure; `egress_address` is the
  /// source address authoritative servers observe. For anycast services
  /// many instances share a service address but differ in egress.
  RecursiveResolver(net::Ipv4Address service_address, net::Ipv4Address egress_address,
                    const AuthorityRegistry* authorities, sim::EventQueue* clock);

  net::Ipv4Address service_address() const noexcept { return service_address_; }
  net::Ipv4Address egress_address() const noexcept { return egress_address_; }

  void set_nxdomain_hijack(NxdomainHijackPolicy policy) { hijack_ = policy; }
  void clear_nxdomain_hijack() { hijack_.reset(); }
  const std::optional<NxdomainHijackPolicy>& nxdomain_hijack() const noexcept {
    return hijack_;
  }

  /// Resolve a stub query. Uses (and fills) the positive/negative cache.
  /// `hijack_roll` in [0,1) decides probabilistic hijacking deterministically.
  Message resolve(const Message& query, double hijack_roll = 0.0);

  std::size_t cache_size() const noexcept { return cache_.size(); }
  void flush_cache() { cache_.clear(); }

  /// Observability sink (the owning world's registry). Counts queries,
  /// cache hits, and NXDOMAIN rewrites actually applied. May stay null.
  void set_metrics(obs::Registry* metrics) noexcept { metrics_ = metrics; }

  /// Flight recorder (the owning world's). An applied NXDOMAIN rewrite
  /// appends a resolver hop event naming this service to the currently
  /// open transaction. May stay null.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

 private:
  struct CacheEntry {
    Rcode rcode = Rcode::kNoError;
    std::vector<ResourceRecord> answers;
    sim::Instant expires;
  };

  Message resolve_uncached(const Message& query);
  Message apply_hijack(const Message& query, Message response, double roll) const;

  net::Ipv4Address service_address_;
  net::Ipv4Address egress_address_;
  const AuthorityRegistry* authorities_;
  sim::EventQueue* clock_;
  std::optional<NxdomainHijackPolicy> hijack_;
  std::unordered_map<std::string, CacheEntry> cache_;
  obs::Registry* metrics_ = nullptr;
  obs::Recorder* recorder_ = nullptr;
};

/// An anycast resolver service (e.g. Google Public DNS 8.8.8.8): one
/// service address, several instances with distinct egress addresses.
/// Clients are mapped to an instance by a stable hash of their address.
class AnycastResolverGroup {
 public:
  AnycastResolverGroup(net::Ipv4Address service_address, std::string name)
      : service_address_(service_address), name_(std::move(name)) {}

  void add_instance(std::shared_ptr<RecursiveResolver> instance);

  net::Ipv4Address service_address() const noexcept { return service_address_; }
  const std::string& name() const noexcept { return name_; }
  std::size_t instance_count() const noexcept { return instances_.size(); }

  RecursiveResolver& instance_for(net::Ipv4Address client);

 private:
  net::Ipv4Address service_address_;
  std::string name_;
  std::vector<std::shared_ptr<RecursiveResolver>> instances_;
};

/// Directory of all resolvers by service address; the stub-side entry point.
class ResolverDirectory {
 public:
  void add_resolver(std::shared_ptr<RecursiveResolver> resolver);
  void add_anycast(std::shared_ptr<AnycastResolverGroup> group);

  /// Resolve on behalf of `client`. Returns SERVFAIL if no resolver is
  /// reachable at `resolver_address`.
  Message resolve_via(net::Ipv4Address resolver_address, net::Ipv4Address client,
                      const Message& query, double hijack_roll = 0.0);

  /// The resolver instance a given client would reach (anycast-aware).
  RecursiveResolver* instance_for(net::Ipv4Address resolver_address,
                                  net::Ipv4Address client);

  std::size_t unicast_count() const noexcept { return unicast_.size(); }
  std::size_t anycast_count() const noexcept { return anycast_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::shared_ptr<RecursiveResolver>> unicast_;
  std::unordered_map<std::uint32_t, std::shared_ptr<AnycastResolverGroup>> anycast_;
};

}  // namespace tft::dns
