// Minimal result/expected type used across the library for recoverable
// errors (parse failures, protocol violations). C++20 has no std::expected,
// so we provide a small, value-semantic equivalent.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace tft::util {

/// Error category used across the library.
enum class ErrorCode {
  kInvalidArgument,
  kParseError,
  kOutOfRange,
  kNotFound,
  kProtocolViolation,
  kTimeout,
  kConnectionRefused,
  kInternal,
};

/// Human-readable name for an ErrorCode (stable, for logs and tests).
std::string_view to_string(ErrorCode code) noexcept;

/// A recoverable error: a code plus a diagnostic message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string to_string() const;
};

/// Thrown when a Result is unwrapped while holding an error.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const Error& err)
      : std::logic_error("bad Result access: " + err.to_string()) {}
};

/// Result<T> holds either a T or an Error. Modeled after std::expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : storage_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    ensure_ok();
    return std::get<0>(storage_);
  }
  T& value() & {
    ensure_ok();
    return std::get<0>(storage_);
  }
  T&& value() && {
    ensure_ok();
    return std::get<0>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const& {
    assert(!ok());
    return std::get<1>(storage_);
  }

  T value_or(T fallback) const& { return ok() ? std::get<0>(storage_) : std::move(fallback); }

 private:
  void ensure_ok() const {
    if (!ok()) throw BadResultAccess(std::get<1>(storage_));
  }

  std::variant<T, Error> storage_;
};

/// Result<void> specialization: success carries no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const& {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Convenience factory.
inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace tft::util
