#include "tft/http/content.hpp"

#include <gtest/gtest.h>

namespace tft::http {
namespace {

TEST(ContentTest, ReferenceObjectsMatchPaperSizes) {
  // §5.1: 9 KB HTML, 39 KB image, 258 KB JS, 3 KB CSS.
  EXPECT_EQ(reference_html().size(), 9u * 1024);
  EXPECT_EQ(reference_image().size(), 39u * 1024);
  EXPECT_EQ(reference_javascript().size(), 258u * 1024);
  EXPECT_EQ(reference_css().size(), 3u * 1024);
}

TEST(ContentTest, ReferenceObjectsAreDeterministic) {
  EXPECT_EQ(reference_html(), reference_html());
  EXPECT_EQ(reference_javascript(), reference_javascript());
  EXPECT_NE(reference_html(9 * 1024, 1), reference_html(9 * 1024, 2));
}

TEST(ContentTest, HtmlIsWellFormedEnough) {
  const std::string html = reference_html();
  EXPECT_TRUE(html.starts_with("<!DOCTYPE html>"));
  EXPECT_NE(html.find("</body>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(ContentTest, ContentTypes) {
  EXPECT_EQ(content_type(ContentKind::kHtml), "text/html; charset=utf-8");
  EXPECT_EQ(content_type(ContentKind::kImage), "image/simg");
  EXPECT_EQ(content_type(ContentKind::kJavaScript), "application/javascript");
  EXPECT_EQ(content_type(ContentKind::kCss), "text/css");
  EXPECT_EQ(to_string(ContentKind::kImage), "image");
}

TEST(SimgTest, MakeAndParse) {
  const std::string image = make_simg(640, 480, 80, 1000, 7);
  const auto info = parse_simg(image);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->width, 640);
  EXPECT_EQ(info->height, 480);
  EXPECT_EQ(info->quality, 80);
  EXPECT_EQ(info->payload_bytes, 1000u);
  EXPECT_EQ(info->total_bytes(), image.size());
}

TEST(SimgTest, ParseRejectsCorruption) {
  const std::string image = make_simg(10, 10, 50, 100, 1);
  EXPECT_FALSE(parse_simg("").ok());
  EXPECT_FALSE(parse_simg("JPEG").ok());
  EXPECT_FALSE(parse_simg(image.substr(0, 8)).ok());
  EXPECT_FALSE(parse_simg(image.substr(0, image.size() - 1)).ok());  // short payload
  EXPECT_FALSE(parse_simg(image + "x").ok());                        // long payload
  std::string zero_quality = image;
  zero_quality[8] = '\0';
  EXPECT_FALSE(parse_simg(zero_quality).ok());
}

TEST(SimgTest, TranscodeShrinksProportionally) {
  const std::string image = make_simg(100, 100, 100, 10000, 3);
  const auto transcoded = transcode_simg(image, 50);
  ASSERT_TRUE(transcoded.ok());
  const auto info = parse_simg(*transcoded);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->quality, 50);
  EXPECT_EQ(info->payload_bytes, 5000u);
  EXPECT_NEAR(compression_ratio(image, *transcoded), 0.5, 0.01);
}

TEST(SimgTest, TranscodeUpIsIdentity) {
  const std::string image = make_simg(100, 100, 40, 1000, 3);
  const auto transcoded = transcode_simg(image, 90);
  ASSERT_TRUE(transcoded.ok());
  EXPECT_EQ(*transcoded, image);
}

TEST(SimgTest, TranscodeIsDeterministic) {
  const std::string image = make_simg(100, 100, 100, 5000, 9);
  EXPECT_EQ(*transcode_simg(image, 34), *transcode_simg(image, 34));
}

TEST(SimgTest, TranscodeRejectsBadArguments) {
  const std::string image = make_simg(10, 10, 90, 100, 1);
  EXPECT_FALSE(transcode_simg(image, 0).ok());
  EXPECT_FALSE(transcode_simg(image, 101).ok());
  EXPECT_FALSE(transcode_simg("not an image", 50).ok());
}

class SimgQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(SimgQualitySweep, RatioTracksQuality) {
  // Property: transcoding a q=100 image to q yields a size ratio ~ q/100.
  const std::string image = make_simg(800, 600, 100, 30000, 11);
  const int quality = GetParam();
  const auto transcoded = transcode_simg(image, static_cast<std::uint8_t>(quality));
  ASSERT_TRUE(transcoded.ok());
  EXPECT_NEAR(compression_ratio(image, *transcoded), quality / 100.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Qualities, SimgQualitySweep,
                         ::testing::Values(1, 10, 34, 47, 53, 61, 75, 99));

TEST(UrlExtractionTest, FindsHttpAndHttps) {
  const auto urls = extract_urls(
      "<a href=\"http://searchassist.verizon.com/s?q=x\">x</a> and "
      "<script src='https://cdn.example.org/a.js'></script>");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "http://searchassist.verizon.com/s?q=x");
  EXPECT_EQ(urls[1], "https://cdn.example.org/a.js");
}

TEST(UrlExtractionTest, DeduplicatesAndOrders) {
  const auto urls = extract_urls(
      "http://a.com/x http://b.com/y http://a.com/x");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "http://a.com/x");
}

TEST(UrlExtractionTest, TrimsTrailingPunctuation) {
  const auto urls = extract_urls("visit http://a.com/page. Or (http://b.com/q)!");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "http://a.com/page");
  EXPECT_EQ(urls[1], "http://b.com/q");
}

TEST(UrlExtractionTest, IgnoresNonUrls) {
  EXPECT_TRUE(extract_urls("httpx://nope http:/one-slash http no-scheme").empty());
  EXPECT_TRUE(extract_urls("").empty());
  EXPECT_TRUE(extract_urls("http://").empty());
}

TEST(UrlExtractionTest, HostsExtraction) {
  const auto hosts = extract_url_hosts(
      "http://midascdn.nervesis.com/ad.js https://midascdn.nervesis.com/x "
      "http://error.talktalk.co.uk:8080/p");
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0], "midascdn.nervesis.com");
  EXPECT_EQ(hosts[1], "error.talktalk.co.uk");
}

TEST(UrlExtractionTest, JavaScriptStringLiterals) {
  const auto hosts = extract_url_hosts(
      "var s=document.createElement('script');"
      "s.src='http://d36mw5gp02ykm5.cloudfront.net/loader.js';");
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0], "d36mw5gp02ykm5.cloudfront.net");
}

TEST(CompressionRatioTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(compression_ratio("", "anything"), 1.0);
  EXPECT_DOUBLE_EQ(compression_ratio("abcd", "ab"), 0.5);
  EXPECT_DOUBLE_EQ(compression_ratio("ab", "abcd"), 2.0);
}

}  // namespace
}  // namespace tft::http
