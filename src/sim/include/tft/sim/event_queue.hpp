// Discrete-event simulation core: a clock plus a priority queue of
// timestamped callbacks. Events scheduled at equal instants run in
// scheduling order (stable), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "tft/sim/time.hpp"
#include "tft/util/function.hpp"

namespace tft::sim {

/// The event queue owns the simulated clock; `run_until`/`run_all` advance
/// it as events fire. Handlers may schedule further events.
///
/// Handlers are moved, never copied: the heap is a plain vector managed
/// with std::push_heap/std::pop_heap (std::priority_queue only exposes a
/// const top(), which would force copying each handler and its captures out
/// on every event), and Handler is a move-only wrapper, so move-only
/// captures (std::unique_ptr et al.) work too.
class EventQueue {
 public:
  using Handler = util::UniqueFunction<void()>;

  Instant now() const noexcept { return now_; }

  /// Schedule `handler` to run at absolute time `when`. Scheduling in the
  /// past is clamped to `now` (the event fires on the next run).
  void schedule_at(Instant when, Handler handler);

  /// Schedule `handler` to run `delay` after the current time.
  void schedule_after(Duration delay, Handler handler);

  /// Number of events not yet executed.
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Run all events with time <= deadline; clock ends at `deadline`.
  /// Returns the number of events executed.
  std::size_t run_until(Instant deadline);

  /// Run until the queue drains. Returns the number of events executed.
  std::size_t run_all();

  /// Advance the clock without requiring events (convenience for tests).
  void advance(Duration delta) { run_until(now_ + delta); }

 private:
  struct Entry {
    Instant when;
    std::uint64_t sequence;  // tie-break: preserve scheduling order
    Handler handler;
  };

  /// Heap comparator: std::*_heap builds a max-heap, so "later" sorts the
  /// earliest (when, sequence) entry to the front.
  static bool later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.sequence > b.sequence;
  }

  /// Pop the earliest entry off the heap, transferring ownership.
  Entry pop_next();

  Instant now_ = Instant::epoch();
  std::uint64_t next_sequence_ = 0;
  std::vector<Entry> heap_;  // min-heap on (when, sequence) via std::*_heap
};

}  // namespace tft::sim
