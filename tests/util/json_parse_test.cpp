#include "tft/util/json_parse.hpp"

#include <gtest/gtest.h>

#include "tft/util/json.hpp"
#include "tft/util/rng.hpp"

namespace tft::util {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool(true));
  EXPECT_DOUBLE_EQ(parse_json("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse_json("-42")->as_number(), -42);
  EXPECT_DOUBLE_EQ(parse_json("1e3")->as_number(), 1000);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, WhitespaceTolerated) {
  const auto value = parse_json("  \n\t {\"a\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(value->is_object());
  EXPECT_EQ((*value)["a"].as_array().size(), 2u);
}

TEST(JsonParseTest, NestedStructures) {
  const auto value = parse_json(
      R"({"countries":[{"code":"MY","total":6983},{"code":"US","total":33398}],)"
      R"("scale":0.05,"overlay":false})");
  ASSERT_TRUE(value.ok());
  const auto& countries = (*value)["countries"].as_array();
  ASSERT_EQ(countries.size(), 2u);
  EXPECT_EQ(countries[0]["code"].as_string(), "MY");
  EXPECT_EQ(countries[1]["total"].as_int(), 33398);
  EXPECT_DOUBLE_EQ((*value)["scale"].as_number(), 0.05);
  EXPECT_FALSE((*value)["overlay"].as_bool(true));
  EXPECT_TRUE((*value)["missing"].is_null());
  EXPECT_TRUE(value->has("scale"));
  EXPECT_FALSE(value->has("missing"));
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")")->as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("Aé€")")->as_string(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_TRUE(parse_json("{}")->as_object().empty());
  EXPECT_TRUE(parse_json("[]")->as_array().empty());
}

struct BadJsonCase {
  const char* text;
};

class JsonParseRejectTest : public ::testing::TestWithParam<BadJsonCase> {};

TEST_P(JsonParseRejectTest, Rejects) {
  EXPECT_FALSE(parse_json(GetParam().text).ok()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    BadDocuments, JsonParseRejectTest,
    ::testing::Values(BadJsonCase{""}, BadJsonCase{"{"}, BadJsonCase{"["},
                      BadJsonCase{"\"unterminated"}, BadJsonCase{"nul"},
                      BadJsonCase{"{\"a\":}"}, BadJsonCase{"{\"a\" 1}"},
                      BadJsonCase{"[1,]"}, BadJsonCase{"[1 2]"},
                      BadJsonCase{"{\"a\":1,}"}, BadJsonCase{"1 2"},
                      BadJsonCase{"{'a':1}"}, BadJsonCase{"\"\\x\""},
                      BadJsonCase{"\"\\u12\""}, BadJsonCase{"\"\\ud800\""},
                      BadJsonCase{"\"\tliteral-tab\""}, BadJsonCase{"--1"},
                      // Truncated objects at every interesting boundary.
                      BadJsonCase{"{\"a\""}, BadJsonCase{"{\"a\":"},
                      BadJsonCase{"{\"a\":1"}, BadJsonCase{"{\"a\":1,"},
                      BadJsonCase{"{\"a\":{\"b\":1}"}, BadJsonCase{"{\"a"},
                      BadJsonCase{"[{\"a\":1}"}, BadJsonCase{"{\"a\":\"x"},
                      BadJsonCase{"{\"a\":tru"}, BadJsonCase{"{\"a\":1.}"},
                      BadJsonCase{"{\"a\":1e}"}, BadJsonCase{"{\"a\":-}"},
                      // Bad escapes: truncated \u, invalid escape letter,
                      // escape at end of input, unpaired high surrogate.
                      BadJsonCase{"\"\\"}, BadJsonCase{"\"\\u\""},
                      BadJsonCase{"\"\\uZZZZ\""}, BadJsonCase{"\"\\q\""},
                      BadJsonCase{"{\"a\":\"\\ud834\"}"}));

TEST(JsonParseTest, DeepNestingBounded) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(parse_json(deep).ok());  // beyond the depth limit
  std::string ok(50, '[');
  ok += std::string(50, ']');
  EXPECT_TRUE(parse_json(ok).ok());
}

TEST(JsonParseTest, DeepNestingExactBoundary) {
  // The documented limit is kMaxDepth=128: a document exactly at the limit
  // parses, one level past it is rejected — for arrays, objects, and mixes.
  const auto array_depth = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  EXPECT_TRUE(parse_json(array_depth(128)).ok());
  EXPECT_FALSE(parse_json(array_depth(129)).ok());

  // Objects wrap a scalar, which occupies one more value level than the
  // empty innermost array above does.
  const auto object_depth = [](std::size_t depth) {
    std::string text;
    for (std::size_t i = 0; i < depth; ++i) text += "{\"k\":";
    text += "1";
    text += std::string(depth, '}');
    return text;
  };
  EXPECT_TRUE(parse_json(object_depth(127)).ok());
  EXPECT_FALSE(parse_json(object_depth(128)).ok());

  // A deep but unterminated prefix must also fail cleanly, not recurse away.
  EXPECT_FALSE(parse_json(std::string(5000, '[')).ok());
  std::string mixed;
  for (int i = 0; i < 3000; ++i) mixed += "[{\"a\":";
  EXPECT_FALSE(parse_json(mixed).ok());
}

TEST(JsonParseRoundTrip, WriterOutputAlwaysParses) {
  // Property: anything JsonWriter emits, parse_json accepts and agrees on.
  Rng rng(0x15a);
  for (int iteration = 0; iteration < 200; ++iteration) {
    JsonWriter writer;
    writer.begin_object();
    writer.field("text", "line\nbreak \"quoted\" \\slash\\");
    writer.field("n", rng.uniform_double() * 1e6);
    writer.field("i", static_cast<std::int64_t>(rng.next_u64() >> 16));
    writer.field("flag", rng.chance(0.5));
    writer.begin_array("items");
    const std::size_t items = rng.index(6);
    for (std::size_t i = 0; i < items; ++i) {
      writer.begin_object().field("k", i).end_object();
    }
    writer.end_array();
    writer.end_object();

    const auto parsed = parse_json(writer.str());
    ASSERT_TRUE(parsed.ok()) << writer.str();
    EXPECT_EQ((*parsed)["text"].as_string(), "line\nbreak \"quoted\" \\slash\\");
    EXPECT_EQ((*parsed)["items"].as_array().size(), items);
  }
}

TEST(JsonParseFuzz, RandomBytesNeverCrash) {
  Rng rng(0x15b);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string garbage;
    const std::size_t length = rng.index(120);
    for (std::size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.next_u64() & 0x7F);
    }
    (void)parse_json(garbage);
  }
}

}  // namespace
}  // namespace tft::util
