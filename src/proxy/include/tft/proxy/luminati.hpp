// The Luminati-like proxy overlay (§2.3): a super proxy that forwards
// client requests through Hola exit nodes. Models the client-visible
// contract the paper's methodology depends on:
//   - country targeting           (-country-XX)
//   - session pinning with 60s TTL (-session-XXX)
//   - DNS at super proxy (Google) or at the exit node (-dns-remote)
//   - automatic retry through up to 5 exit nodes, with the zID trail
//     reported in the X-Hola-Timeline-Debug response header
//   - CONNECT tunnels restricted to port 443
#pragma once

#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tft/proxy/exit_node.hpp"

namespace tft::obs {
enum class Hop : std::uint8_t;
}

namespace tft::proxy {

struct RequestOptions {
  std::optional<net::CountryCode> country;  // -country-XX
  std::optional<std::string> session;       // -session-XXX
  bool dns_remote = false;                  // -dns-remote
};

enum class ProxyStatus {
  kOk,
  kSuperProxyDnsFailure,   // the pre-check at the super proxy failed
  kExitNodeDnsNxdomain,    // exit node's resolver returned a clean NXDOMAIN
  kExitNodeDnsFailure,     // exit node could not resolve (SERVFAIL etc.)
  kNoExitNodeAvailable,
  kAllAttemptsFailed,
  kTunnelFailed,
  kPortNotAllowed,
};

std::string_view to_string(ProxyStatus status) noexcept;

/// Inverse of to_string(ProxyStatus) — how the socket front-end's status
/// header travels back to the client side. Errors on unknown names.
util::Result<ProxyStatus> parse_proxy_status(std::string_view text);

/// One entry of the retry trail (the debug header's content).
struct AttemptInfo {
  std::string zid;
  std::string error;  // empty on the successful attempt
};

/// Parsed X-Hola-Timeline-Debug header — what a real Luminati client reads
/// to learn which exit node served a request and which ones were retried.
struct TimelineDebug {
  std::string zid;                     // the serving node
  std::vector<AttemptInfo> attempts;   // full trail, in order
};

/// Parse the "zid=<zid> tried=<zid>:<err>,..." header value the super proxy
/// attaches to responses. Errors out on malformed input.
util::Result<TimelineDebug> parse_timeline_debug(std::string_view header);

struct ProxyFetchResult {
  ProxyStatus status = ProxyStatus::kOk;
  http::Response response;            // meaningful when status == kOk
  std::string zid;                    // node that served (or last tried)
  net::Ipv4Address exit_address;      // its IP address
  net::Asn exit_asn = 0;
  net::CountryCode exit_country;
  std::vector<AttemptInfo> timeline;  // all attempts, in order

  bool ok() const noexcept { return status == ProxyStatus::kOk; }
};

struct ConnectResult {
  ProxyStatus status = ProxyStatus::kOk;
  tls::CertificateChain chain;        // as observed through the tunnel
  std::string zid;
  net::Ipv4Address exit_address;
  net::CountryCode exit_country;

  bool ok() const noexcept { return status == ProxyStatus::kOk; }
};

/// Result of an SMTP transaction tunneled through an exit node (only
/// available on overlays that allow arbitrary ports, unlike Luminati).
struct SmtpResult {
  ProxyStatus status = ProxyStatus::kOk;
  smtp::Transcript transcript;
  std::string zid;
  net::Ipv4Address exit_address;
  net::Asn exit_asn = 0;
  net::CountryCode exit_country;

  bool ok() const noexcept { return status == ProxyStatus::kOk; }
};

/// A population of exit nodes the super proxy can draw from without holding
/// them resident. Implementations must be deterministic: materialize(i)
/// returns a byte-identical agent no matter when, how often, or in which
/// order it is called, and the country directory must enumerate nodes in
/// the same order add_exit_node would have registered them.
class NodeSource {
 public:
  virtual ~NodeSource() = default;
  virtual std::size_t node_count() const = 0;
  virtual std::size_t country_count(const net::CountryCode& country) const = 0;
  virtual std::vector<std::pair<net::CountryCode, std::size_t>> country_counts()
      const = 0;
  /// Global index of the `slot`-th node of `country`, registration order.
  virtual std::size_t country_slot(const net::CountryCode& country,
                                   std::size_t slot) const = 0;
  virtual std::shared_ptr<ExitNodeAgent> materialize(std::size_t index) const = 0;
};

class SuperProxy {
 public:
  struct Config {
    /// Resolver the super proxy itself uses (Google Public DNS).
    net::Ipv4Address dns_resolver{8, 8, 8, 8};
    /// The super proxy's own address (selects its anycast DNS instance).
    net::Ipv4Address address{192, 0, 2, 1};
    int max_attempts = 5;
    sim::Duration session_ttl = sim::Duration::seconds(60);
    /// Luminati restricts CONNECT to port 443. VPN services that tunnel
    /// arbitrary traffic (the §3.4 generality discussion) set this true,
    /// enabling the SMTP methodology.
    bool allow_arbitrary_ports = false;
    /// Ethics guardrail (§3.4): the study never downloads more than this
    /// many body bytes through any single exit node (identified by zID).
    /// 0 disables enforcement. The paper's self-imposed cap was 1 MB.
    std::size_t per_node_byte_budget = 1024 * 1024;
    /// Base of the proxy's keyed draw streams (node picks, client ports).
    /// The world builder derives it from the study seed; 0 falls back to a
    /// stable per-proxy default.
    std::uint64_t stream_seed = 0;
  };

  SuperProxy(Config config, Environment environment);

  /// Whether a CONNECT to `port` would be admitted. Luminati tunnels port
  /// 443 only; the socket front-end rejects other ports before opening a
  /// tunnel, exactly as connect_and_handshake would.
  bool tunnel_port_allowed(std::uint16_t port) const noexcept {
    return port == 443;
  }

  /// Current simulated time at the engine — lets the socket front-end stamp
  /// its flight-recorder hops on the same clock as the engine's own.
  sim::Instant now() const noexcept { return environment_.clock->now(); }

  /// The super proxy's own address and resolver (needed by the §4.1
  /// methodology to predict which anycast DNS instance its pre-check uses).
  net::Ipv4Address address() const noexcept { return config_.address; }
  net::Ipv4Address dns_resolver() const noexcept { return config_.dns_resolver; }

  void add_exit_node(std::shared_ptr<ExitNodeAgent> node);

  /// Switch to a lazy node population: at most ceil(node_count/shard_count)
  /// agents stay resident, evicted least-recently-used. Gauges
  /// `world.shard.{count,capacity,resident_peak}` and
  /// `world.bytes.peak_shard` record the geometry and the observed ceiling.
  /// Mutually exclusive with add_exit_node.
  void set_node_source(std::shared_ptr<NodeSource> source,
                       std::size_t shard_count);
  bool lazy() const noexcept { return source_ != nullptr; }
  std::size_t resident_capacity() const noexcept { return resident_capacity_; }
  std::size_t resident_peak() const noexcept { return resident_peak_; }

  std::size_t node_count() const noexcept {
    return source_ ? source_->node_count() : nodes_.size();
  }
  std::size_t node_count(const net::CountryCode& country) const;
  /// The materialized node table. Empty in lazy mode — tooling that needs
  /// to walk every agent (validate, failure injection) must materialize.
  const std::vector<std::shared_ptr<ExitNodeAgent>>& nodes() const noexcept {
    return nodes_;
  }
  /// Countries with at least one node, with node counts (what Luminati
  /// "reports per country" for the crawler's weighting).
  std::vector<std::pair<net::CountryCode, std::size_t>> country_counts() const;

  /// Proxy an HTTP GET for `url` (the client's absolute-form request).
  ProxyFetchResult fetch(const http::Url& url, const RequestOptions& options);

  /// CONNECT destination:port and run a TLS handshake with `sni`.
  /// Only port 443 is allowed, as in the real service.
  ConnectResult connect_and_handshake(net::Ipv4Address destination,
                                      std::uint16_t port, std::string_view sni,
                                      const RequestOptions& options);

  /// Tunnel an SMTP transaction to destination:25 via an exit node.
  /// Rejected with kPortNotAllowed unless the overlay permits arbitrary
  /// ports (the SMTP extension).
  SmtpResult smtp_transaction(net::Ipv4Address destination,
                              const smtp::ClientScript& script,
                              const RequestOptions& options);

  /// Ethics accounting: body bytes downloaded through `zid` so far, and the
  /// heaviest-loaded node overall (the §3.4 compliance check).
  std::size_t bytes_served(const std::string& zid) const;
  std::size_t max_bytes_served() const;
  /// Nodes excluded from further measurement because they reached the
  /// per-node byte budget.
  std::size_t budget_exhausted_nodes() const;

 private:
  /// Bump a counter on the environment's metrics registry (if wired).
  void count(std::string_view name, std::uint64_t delta = 1);
  /// Append a hop event to the open flight-recorder transaction (if wired),
  /// stamped with the current simulated time.
  void record(obs::Hop hop, std::string_view actor, std::string_view action,
              std::string_view detail);
  /// Record how many exit nodes one request tried (the churn histogram).
  void observe_attempts(std::size_t attempts);

  /// A node selected for an attempt: the agent plus its stable global index
  /// (sessions and retry-exclusion track indices, never pointers, so the
  /// lazy cache may evict and re-materialize freely between requests).
  struct ActiveNode {
    std::size_t index = 0;
    std::shared_ptr<ExitNodeAgent> agent;
    explicit operator bool() const noexcept { return agent != nullptr; }
  };

  /// Agent for a global index — the resident table, or the lazy cache
  /// (materializing and evicting LRU as needed).
  std::shared_ptr<ExitNodeAgent> node_at(std::size_t index);

  ActiveNode session_node(const RequestOptions& options);
  ActiveNode pick_node(util::StreamRng& stream, const RequestOptions& options,
                       const std::vector<std::size_t>& exclude);
  void pin_session(const RequestOptions& options, std::size_t node_index,
                   std::uint64_t scope);
  void annotate(http::Response& response, const ProxyFetchResult& result) const;

  /// The request's draw-stream scope. Sessioned requests share the scope
  /// of the epoch their session was pinned under (a fresh epoch is minted
  /// when no valid pin exists), so a session's requests replay coherently;
  /// session-less requests are keyed purely by the request's target name.
  /// Either way the scope never depends on what other sessions did — that
  /// independence is what makes probe crawls composable.
  std::uint64_t begin_request_scope(const RequestOptions& options,
                                    std::string_view fallback);

  struct SessionEntry {
    std::size_t node_index = 0;
    sim::Instant expires;
    std::uint64_t scope = 0;  // the epoch scope the pin was created under
  };

  bool over_budget(const ExitNodeAgent& node) const;
  void account_bytes(const std::string& zid, std::size_t bytes);

  Config config_;
  Environment environment_;
  /// Base of every keyed stream the proxy draws from (see Config::stream_seed).
  std::uint64_t seed_ = 0;
  std::vector<std::shared_ptr<ExitNodeAgent>> nodes_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_country_;
  /// Lazy mode (set_node_source): bounded-residency cache over `source_`.
  std::shared_ptr<NodeSource> source_;
  std::size_t resident_capacity_ = 0;
  std::size_t resident_peak_ = 0;
  std::list<std::size_t> lru_;  // most recently used at the front
  std::unordered_map<std::size_t,
                     std::pair<std::shared_ptr<ExitNodeAgent>,
                               std::list<std::size_t>::iterator>>
      resident_;
  std::unordered_map<std::string, SessionEntry> sessions_;
  /// How many pin epochs each session has been through; folded into the
  /// epoch scope so an expired session re-picks from a fresh stream.
  std::unordered_map<std::string, std::uint64_t> session_generation_;
  std::unordered_map<std::string, std::size_t> bytes_by_zid_;
};

}  // namespace tft::proxy
