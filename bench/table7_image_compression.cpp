// Regenerates Table 7: exit nodes receiving transparently compressed
// images, grouped by (mobile) AS, with per-AS compression ratios.
#include <map>

#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.08);
  const auto world = tft::bench::build_paper_world(options);
  auto config = tft::bench::study_config(options);
  // Sample more heavily: Table 7's small carrier ASes need deeper coverage.
  config.http.nodes_per_as = 6;
  config.http.expanded_nodes_per_as = 120;
  config.http.stall_limit = 8000;

  tft::core::HttpModificationProbe probe(*world, config.http);
  probe.run();
  const auto report =
      tft::core::analyze_http(*world, probe.observations(), config.http_analysis);

  std::cout << tft::stats::banner("Table 7: image compression by AS");
  const std::map<tft::net::Asn, std::string> paper = {
      {15617, "100% / 53%"}, {29180, "100% / 47%"}, {29975, "94% / M"},
      {25135, "83% / 54%"},  {36935, "77% / M"},    {36925, "68% / 34%"},
      {16135, "68% / 54%"},  {15897, "56% / 53%"},  {12361, "48% / 52%"},
      {37492, "29% / 34%"},  {132199, "14% / 51%"}, {12844, "6% / 53%"},
  };
  tft::stats::Table table({"AS", "ISP (Country)", "Mod.", "Total", "Ratio", "Cmp.",
                           "Mobile", "Paper (ratio/cmp)"});
  for (const auto& row : report.transcoders) {
    std::string compression = row.ratios.size() == 1
                                  ? tft::util::format_percent(row.ratios.front(), 0)
                                  : "M";
    const auto it = paper.find(row.asn);
    table.add_row({"AS" + std::to_string(row.asn),
                   row.isp + " (" + row.country + ")",
                   std::to_string(row.modified), std::to_string(row.total),
                   tft::util::format_percent(row.ratio(), 0), compression,
                   row.mobile_isp ? "yes" : "no",
                   it == paper.end() ? "-" : it->second});
  }
  std::cout << table.render() << "\n";
  std::cout << "image-modified nodes: " << report.image_modified << " of "
            << report.total_nodes << " measured ("
            << tft::util::format_percent(
                   report.total_nodes
                       ? static_cast<double>(report.image_modified) / report.total_nodes
                       : 0,
                   2)
            << ")   [paper: 694 of 49,545 = 1.4%]\n";
  return 0;
}
