// Ground truth: what violations were actually configured for each node.
// The real study could never observe this; the simulation records it so
// integration tests can check that the detectors recover the truth.
#pragma once

#include <string>
#include <unordered_map>

namespace tft::world {

enum class DnsHijackSource {
  kNone,
  kIspResolver,
  kPublicResolver,
  kPathMiddlebox,
  kHostSoftware,
};

std::string_view to_string(DnsHijackSource source) noexcept;

struct NodeTruth {
  DnsHijackSource dns_hijack = DnsHijackSource::kNone;
  std::string dns_hijack_operator;  // ISP / product behind the hijack
  std::string html_injector;        // adware / filter name, empty = clean
  std::string image_transcoder;     // carrier transcoder name
  std::string content_blocker;
  std::string object_replacer;      // JS/CSS error-replacement box
  std::string cert_replacer;        // AV / filter / malware product
  std::string monitor;              // monitoring entity
  std::string smtp_interceptor;       // SMTP extension (§3.4)
  std::string smtp_interceptor_kind;  // "strip_starttls" | "block_port" | ...
  bool uses_vpn = false;
};

class GroundTruth {
 public:
  NodeTruth& node(const std::string& zid) { return nodes_[zid]; }

  const NodeTruth* find(const std::string& zid) const {
    const auto it = nodes_.find(zid);
    return it == nodes_.end() ? nullptr : &it->second;
  }

  const std::unordered_map<std::string, NodeTruth>& all() const noexcept {
    return nodes_;
  }

  /// Count nodes for which `predicate` holds.
  template <typename Predicate>
  std::size_t count(Predicate predicate) const {
    std::size_t n = 0;
    for (const auto& [zid, truth] : nodes_) {
      if (predicate(truth)) ++n;
    }
    return n;
  }

 private:
  std::unordered_map<std::string, NodeTruth> nodes_;
};

}  // namespace tft::world
