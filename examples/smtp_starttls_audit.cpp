// Example: the §3.4 extension in action — auditing SMTP end-to-end
// violations through an overlay that tunnels arbitrary traffic. Shows the
// scripted-transaction methodology, STARTTLS-stripping detection, and the
// Luminati limitation (443-only) the paper calls out.
#include <iostream>

#include "tft/core/report_json.hpp"
#include "tft/core/smtp_probe.hpp"
#include "tft/world/world.hpp"

using namespace tft;  // NOLINT — example brevity

int main() {
  world::WorldSpec spec;
  spec.countries = {
      {"US", 900, 0, 3, 2, 0.10, 0.05},
      {"JP", 500, 0, 2, 2, 0.10, 0.05},
  };
  spec.scattered_google_hijack_nodes = 0;
  spec.clean_public_resolvers = 8;
  spec.adware.clear();
  spec.adware_install_boost = 1.0;
  spec.transcoders.clear();
  spec.cert_replacers.clear();
  spec.monitors.clear();
  spec.tail_monitor_groups = 0;
  spec.blockpage_nodes = 0;
  spec.js_error_nodes = 0;
  spec.css_error_nodes = 0;
  spec.https.popular_sites_per_country = 3;
  spec.https.countries_with_rankings = 2;
  spec.https.universities = {"example.edu"};

  using SKind = world::SmtpInterceptSpec::Kind;
  spec.smtp_interceptors = {
      {"hotel-wifi-port25-block", SKind::kBlockPort, 120, 10, 2},
      {"carrier-fixup-box", SKind::kStripStarttls, 60, 6, 2},
      {"legacy-smtp-gateway", SKind::kRewriteBanner, 20, 4, 2},
      {"av-outbound-scanner", SKind::kTagBody, 10, 4, 2},
  };
  spec.arbitrary_port_overlay = true;  // the VPN-style overlay

  auto world = world::build_world(spec, 1.0, 31);
  std::cout << "Auditing " << world->luminati->node_count()
            << " exit nodes for SMTP interception...\n\n";

  core::SmtpProbeConfig config;
  config.target_nodes = 0;  // exhaustive
  core::SmtpProbe probe(*world, config);
  probe.run();

  core::SmtpAnalysisConfig analysis;
  analysis.min_nodes_per_as = 4;
  const auto report = core::analyze_smtp(*world, probe.observations(), analysis);
  std::cout << core::render_smtp_report(report) << "\n";

  // Machine-readable output for pipelines.
  std::cout << "JSON: " << core::smtp_report_json(report).substr(0, 160) << "...\n\n";

  // The same probe against a Luminati-like overlay refuses to run.
  spec.arbitrary_port_overlay = false;
  auto luminati_like = world::build_world(spec, 0.3, 31);
  core::SmtpProbe rejected(*luminati_like, config);
  rejected.run();
  std::cout << "Against a 443-only overlay the probe "
            << (rejected.overlay_rejected() ? "refuses to run (as on Luminati)."
                                            : "unexpectedly ran!")
            << "\n";
  return 0;
}
