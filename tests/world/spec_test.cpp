#include "tft/world/spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tft::world {
namespace {

TEST(PaperSpecTest, CountryCoverageMatchesPaperScale) {
  const WorldSpec spec = paper_spec();
  // The paper measured nodes in ~167-172 countries.
  EXPECT_GE(spec.countries.size(), 160u);
  std::set<net::CountryCode> codes;
  long long total = 0;
  for (const auto& country : spec.countries) {
    EXPECT_TRUE(codes.insert(country.code).second) << "duplicate " << country.code;
    EXPECT_GT(country.total_nodes, 0);
    EXPECT_LE(country.extra_hijacked_nodes, country.total_nodes);
    total += country.total_nodes;
  }
  // Population on the order of the paper's 750K nodes.
  EXPECT_GT(total, 600000);
  EXPECT_LT(total, 900000);
}

TEST(PaperSpecTest, Table3CountriesPresent) {
  const WorldSpec spec = paper_spec();
  for (const char* code : {"MY", "ID", "CN", "GB", "DE", "US", "IN", "BR", "BJ", "JO"}) {
    bool found = false;
    for (const auto& country : spec.countries) found = found || country.code == code;
    EXPECT_TRUE(found) << code;
  }
}

TEST(PaperSpecTest, Table4IspsTranscribed) {
  const WorldSpec spec = paper_spec();
  ASSERT_EQ(spec.isp_resolver_hijackers.size(), 19u);  // 19 ISPs in Table 4
  long long nodes = 0;
  int shared_js = 0;
  for (const auto& isp : spec.isp_resolver_hijackers) {
    nodes += isp.nodes;
    if (isp.shared_vendor_js) ++shared_js;
    EXPECT_FALSE(isp.landing_host.empty());
  }
  EXPECT_EQ(nodes, 17844);  // sum of Table 4's exit-node column
  EXPECT_EQ(shared_js, 5);  // Cox, Oi, TalkTalk, BT, Verizon
}

TEST(PaperSpecTest, Table5LandingHosts) {
  const WorldSpec spec = paper_spec();
  std::set<std::string> hosts;
  for (const auto& entry : spec.path_hijackers) hosts.insert(entry.landing_host);
  EXPECT_TRUE(hosts.contains("navigationshilfe.t-online.de"));
  EXPECT_TRUE(hosts.contains("searchassist.verizon.com"));
  EXPECT_TRUE(hosts.contains("v3.mercusuar.uzone.id"));
  ASSERT_EQ(spec.host_dns_hijackers.size(), 2u);
  EXPECT_EQ(spec.host_dns_hijackers[0].landing_host, "nortonsafe.search.ask.com");
}

TEST(PaperSpecTest, PublicResolverHijackers) {
  const WorldSpec spec = paper_spec();
  // 21 hijacking servers (paper §4.3.2), 1,512 affected nodes.
  int servers = 0, nodes = 0;
  for (const auto& service : spec.public_resolver_hijackers) {
    servers += service.servers;
    nodes += service.nodes;
  }
  EXPECT_EQ(servers, 21);
  EXPECT_EQ(nodes, 1512);
}

TEST(PaperSpecTest, Table6Signatures) {
  const WorldSpec spec = paper_spec();
  std::set<std::string> names;
  for (const auto& adware : spec.adware) names.insert(adware.name);
  EXPECT_TRUE(names.contains("cloudfront-loader"));
  EXPECT_TRUE(names.contains("oiasudoj"));
  EXPECT_TRUE(names.contains("adtaily"));
  // Signature markers appear in the snippets.
  for (const auto& adware : spec.adware) {
    EXPECT_FALSE(adware.snippet.empty());
  }
  ASSERT_EQ(spec.isp_filters.size(), 1u);
  EXPECT_EQ(spec.isp_filters[0].asn, 42925u);  // Internet Rimon
}

TEST(PaperSpecTest, Table7Transcoders) {
  const WorldSpec spec = paper_spec();
  ASSERT_EQ(spec.transcoders.size(), 12u);  // 12 ASes in Table 7
  int multi_ratio = 0;
  for (const auto& transcoder : spec.transcoders) {
    EXPECT_GT(transcoder.fraction, 0.0);
    EXPECT_LE(transcoder.fraction, 1.0);
    if (transcoder.qualities.size() > 1) ++multi_ratio;
  }
  EXPECT_EQ(multi_ratio, 2);  // Vodacom + Vodafone Egypt show "M"
}

TEST(PaperSpecTest, Table8CertReplacers) {
  const WorldSpec spec = paper_spec();
  ASSERT_EQ(spec.cert_replacers.size(), 13u);  // 13 issuers in Table 8
  long long nodes = 0;
  const CertReplacerSpec* avast = nullptr;
  const CertReplacerSpec* opendns = nullptr;
  const CertReplacerSpec* cloudguard = nullptr;
  for (const auto& product : spec.cert_replacers) {
    nodes += product.nodes;
    if (product.product == "Avast") avast = &product;
    if (product.product == "OpenDNS") opendns = &product;
    if (product.product == "Cloudguard.me") cloudguard = &product;
  }
  EXPECT_EQ(nodes, 4248);  // sum of Table 8's column
  ASSERT_NE(avast, nullptr);
  EXPECT_FALSE(avast->reuse_public_key);  // the one exception (§6.2)
  ASSERT_NE(opendns, nullptr);
  EXPECT_TRUE(opendns->only_if_upstream_valid);
  EXPECT_TRUE(opendns->only_blocked_hosts);
  ASSERT_NE(cloudguard, nullptr);
  EXPECT_EQ(cloudguard->kind, CertReplacerSpec::Kind::kMalware);
  EXPECT_EQ(cloudguard->only_country, net::CountryCode("RU"));
  EXPECT_TRUE(cloudguard->also_injects_html);
}

TEST(PaperSpecTest, Table9Monitors) {
  const WorldSpec spec = paper_spec();
  ASSERT_EQ(spec.monitors.size(), 6u);
  const MonitorSpec* trend = nullptr;
  const MonitorSpec* bluecoat = nullptr;
  const MonitorSpec* tiscali = nullptr;
  for (const auto& monitor : spec.monitors) {
    if (monitor.entity == "Trend Micro") trend = &monitor;
    if (monitor.entity == "Bluecoat") bluecoat = &monitor;
    if (monitor.entity == "Tiscali U.K.") tiscali = &monitor;
  }
  ASSERT_NE(trend, nullptr);
  EXPECT_EQ(trend->source_ips, 55);
  EXPECT_EQ(trend->nodes, 6571);
  EXPECT_EQ(trend->refetches.size(), 2u);  // the y=0.5 step of Figure 5
  ASSERT_NE(bluecoat, nullptr);
  EXPECT_NEAR(bluecoat->refetches[0].prefetch_probability, 0.83, 1e-9);
  ASSERT_NE(tiscali, nullptr);
  EXPECT_EQ(tiscali->refetches.size(), 1u);
  EXPECT_DOUBLE_EQ(tiscali->refetches[0].min_delay_s, 30.0);
  EXPECT_DOUBLE_EQ(tiscali->refetches[0].max_delay_s, 30.0);
  EXPECT_NEAR(tiscali->isp_node_fraction, 0.114, 1e-9);
}

TEST(PaperSpecTest, HttpsSites) {
  const WorldSpec spec = paper_spec();
  EXPECT_EQ(spec.https.popular_sites_per_country, 20);
  EXPECT_EQ(spec.https.countries_with_rankings, 115);
  EXPECT_EQ(spec.https.universities.size(), 10u);
}

TEST(MiniSpecTest, IsSmallAndComplete) {
  const WorldSpec spec = mini_spec();
  long long total = 0;
  for (const auto& country : spec.countries) total += country.total_nodes;
  EXPECT_LT(total, 2000);
  EXPECT_FALSE(spec.isp_resolver_hijackers.empty());
  EXPECT_FALSE(spec.adware.empty());
  EXPECT_FALSE(spec.transcoders.empty());
  EXPECT_FALSE(spec.cert_replacers.empty());
  EXPECT_FALSE(spec.monitors.empty());
}

}  // namespace
}  // namespace tft::world
