#include "tft/sim/time.hpp"

#include <cstdio>

namespace tft::sim {

std::string to_string(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fs", d.to_seconds());
  return buf;
}

std::string to_string(Instant t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t=%.3fs",
                static_cast<double>(t.micros) / 1'000'000.0);
  return buf;
}

}  // namespace tft::sim
