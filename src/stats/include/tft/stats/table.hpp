// ASCII table rendering for the benchmark harness: every bench binary
// prints rows in the same layout as the paper's tables.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tft::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Add one row; missing cells render empty, extras are dropped.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with a header rule, columns padded to content width.
  std::string render() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section header used by the bench binaries:
/// "== Table 3: ... ==================".
std::string banner(std::string_view title);

}  // namespace tft::stats
