// Machine-readable report export: the same data the render_* functions
// print, as JSON documents (the paper published its analysis data; this is
// the equivalent facility for downstream tooling).
#pragma once

#include <string>

#include "tft/core/smtp_probe.hpp"
#include "tft/core/study.hpp"

namespace tft::util {
class JsonWriter;
}

namespace tft::core {

std::string dns_report_json(const DnsReport& report);
std::string http_report_json(const HttpReport& report);
std::string https_report_json(const HttpsReport& report);
std::string monitor_report_json(const MonitorReport& report);
std::string smtp_report_json(const SmtpReport& report);

/// The full study: coverage + all four reports in one document.
std::string study_result_json(const StudyResult& result);

/// Streaming form: emit the same document through `json` (which must be
/// fresh — no containers open, nothing written). With a sink installed via
/// JsonWriter::set_sink the document streams out in bounded memory — the
/// export path for studies whose reports outgrow a comfortable buffer.
/// study_result_json delegates here, so the two forms are byte-identical.
void write_study_result(util::JsonWriter& json, const StudyResult& result);

}  // namespace tft::core
