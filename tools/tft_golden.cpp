// tft-golden: golden-scenario regression checker for the study pipeline.
//
//   tft-golden --scenario scenarios/regional_isp_audit.json \
//              --golden tests/golden/regional_isp_audit.json [--jobs 4]
//   tft-golden --scenario ... --golden ... --update
//
// Runs the full study (all four experiments) over a scenario spec at small
// scale, composes the machine-readable report plus the deterministic
// metrics registry into one JSON document, canonicalizes it (build stamp
// and wall-clock `timing` stripped — the same data --metrics-omit-timing
// drops), and byte-compares against the checked-in snapshot. The study
// pipeline's determinism contract makes the canonical document
// byte-identical for every --jobs value; the golden ctest entries run the
// same snapshot at --jobs 1 and --jobs 4 to prove it.
#include <fstream>
#include <iostream>
#include <sstream>

#include "tft/core/report_json.hpp"
#include "tft/core/study.hpp"
#include "tft/testing/golden.hpp"
#include "tft/util/flags.hpp"
#include "tft/util/json.hpp"
#include "tft/world/spec_io.hpp"

namespace {

constexpr const char* kUsage = R"(tft-golden: golden-scenario regression harness

Flags:
  --scenario <path>  scenario spec JSON (see scenarios/)
  --golden <path>    snapshot file to compare against (or write with --update)
  --update           regenerate the snapshot instead of checking it
  --jobs <n>         worker threads (default 1; canonical output is
                     byte-identical for every value)
  --scale <f>        population scale for the scenario (default 0.5)
  --seed <n>         world + crawl seed (default 2016)
  --quiet            print nothing on success
  --help             this text
)";

int fail(const std::string& message) {
  std::cerr << "tft-golden: " << message << "\n" << kUsage;
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using tft::util::Flags;
  const auto parsed = Flags::parse(argc, argv, {"update", "quiet", "help"});
  if (!parsed.ok()) return fail(parsed.error().to_string());
  const Flags& flags = *parsed;

  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto unknown = flags.unknown(
      {"scenario", "golden", "update", "jobs", "scale", "seed", "quiet", "help"});
  if (!unknown.empty()) return fail("unknown flag --" + unknown.front());

  const auto scenario_path = flags.get("scenario");
  if (!scenario_path) return fail("--scenario is required");
  const auto golden_path = flags.get("golden");
  if (!golden_path) return fail("--golden is required");
  const auto scale = flags.get_double("scale", 0.5);
  if (!scale.ok()) return fail(scale.error().to_string());
  const auto seed = flags.get_int("seed", 2016);
  if (!seed.ok()) return fail(seed.error().to_string());
  const auto jobs = flags.get_int("jobs", 1);
  if (!jobs.ok()) return fail(jobs.error().to_string());
  if (*jobs < 1) return fail("--jobs must be >= 1");
  const bool quiet = flags.get_bool("quiet");

  std::ifstream file(*scenario_path);
  if (!file) return fail("cannot read scenario file " + *scenario_path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  auto spec = tft::world::spec_from_json(buffer.str());
  if (!spec.ok()) {
    return fail("bad scenario file: " + spec.error().to_string());
  }

  auto config = tft::core::StudyConfig::for_scale(*scale, 1u << 22);
  config.jobs = static_cast<std::size_t>(*jobs);
  const auto result = tft::core::run_study(
      *spec, *scale, static_cast<std::uint64_t>(*seed), config);

  // One document: the machine-readable study report plus the deterministic
  // metrics sections. Canonicalization strips `build` and `timing`.
  tft::util::JsonWriter metrics_writer;
  metrics_writer.begin_object();
  result.metrics.write_json(metrics_writer, /*include_timing=*/false);
  metrics_writer.end_object();
  const std::string combined = "{\"report\":" +
                               tft::core::study_result_json(result) +
                               ",\"metrics\":" +
                               std::move(metrics_writer).take() + "}";
  const auto canonical = tft::testing::canonicalize_json(combined);
  if (!canonical.ok()) {
    return fail("internal: study JSON failed to canonicalize: " +
                canonical.error().to_string());
  }

  if (flags.get_bool("update")) {
    if (const auto written = tft::testing::update_golden(*golden_path, *canonical);
        !written.ok()) {
      return fail(written.error().to_string());
    }
    if (!quiet) {
      std::cerr << "snapshot written to " << *golden_path << " ("
                << canonical->size() << " bytes)\n";
    }
    return 0;
  }

  const auto outcome = tft::testing::check_golden(*golden_path, *canonical);
  if (outcome.matched) {
    if (!quiet) {
      std::cout << "golden OK: " << *golden_path << " (" << canonical->size()
                << " bytes, jobs=" << *jobs << ")\n";
    }
    return 0;
  }
  std::cerr << "GOLDEN MISMATCH for " << *scenario_path << ":\n"
            << outcome.diff
            << (outcome.snapshot_missing
                    ? ""
                    : "\nIf the change is intentional, regenerate with "
                      "tools/update_goldens.\n");
  return 1;
}
