#include "tft/core/http_probe.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tft/http/content.hpp"
#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/obs/shards.hpp"
#include "tft/util/hash.hpp"
#include "tft/util/rng.hpp"
#include "tft/util/stream_rng.hpp"
#include "tft/util/strings.hpp"
#include "tft/util/thread_pool.hpp"

namespace tft::core {

namespace {

bool looks_like_blockpage(const http::Response& response) {
  if (response.status == 403 || response.status == 503) return true;
  return util::icontains(response.body, "bandwidth exceeded") ||
         util::icontains(response.body, ">blocked<") ||
         util::icontains(response.body, "access denied");
}

bool looks_like_error_page(const http::Response& response,
                           std::string_view expected_type) {
  if (response.status != 200) return true;
  if (response.body.empty()) return true;
  const auto type = response.headers.get("Content-Type");
  return !type || !util::icontains(*type, expected_type);
}

/// Identifier scan: tokens of [A-Za-z0-9_], used by the keyword fallback.
std::vector<std::string> scan_identifiers(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      current.push_back(c);
    } else {
      if (current.size() >= 6) out.push_back(current);
      current.clear();
    }
  }
  if (current.size() >= 6) out.push_back(current);
  return out;
}

bool has_mixed_case_or_underscore(std::string_view token) {
  bool lower = false, upper = false, underscore = false;
  for (const char c : token) {
    lower = lower || (c >= 'a' && c <= 'z');
    upper = upper || (c >= 'A' && c <= 'Z');
    underscore = underscore || c == '_';
  }
  return underscore || (lower && upper);
}

}  // namespace

std::string extract_injection_signature(std::string_view original,
                                        std::string_view modified) {
  // Locate the injected chunk via common prefix/suffix.
  std::size_t prefix = 0;
  const std::size_t max_prefix = std::min(original.size(), modified.size());
  while (prefix < max_prefix && original[prefix] == modified[prefix]) ++prefix;
  std::size_t suffix = 0;
  while (suffix < max_prefix - prefix &&
         original[original.size() - 1 - suffix] == modified[modified.size() - 1 - suffix]) {
    ++suffix;
  }
  if (modified.size() < prefix + suffix) return "(rewritten)";
  const std::string_view injected = modified.substr(prefix, modified.size() - prefix - suffix);
  if (injected.empty()) return "(rewritten)";

  // Rule 1: an embedded URL identifies the culprit directly.
  const auto hosts = http::extract_url_hosts(injected);
  if (!hosts.empty()) return hosts.front();

  // Rule 2: "var <ident>" declarations (the oiasudoj case).
  const auto var_at = injected.find("var ");
  if (var_at != std::string_view::npos) {
    const auto ident = scan_identifiers(injected.substr(var_at + 4, 64));
    if (!ident.empty()) return "var " + ident.front() + ";";
  }

  // Rule 3: a distinctive identifier (underscores / CamelCase, the
  // AdTaily_Widget_Container and NetsparkQuiltingResult cases).
  std::string best;
  for (const auto& token : scan_identifiers(injected)) {
    if (token.size() >= 10 && has_mixed_case_or_underscore(token) &&
        token.size() > best.size()) {
      best = token;
    }
  }
  if (!best.empty()) return best;
  return "(unidentified)";
}

HttpModificationProbe::HttpModificationProbe(world::World& world,
                                             HttpProbeConfig config)
    : world_(world), config_(config) {}

std::size_t HttpModificationProbe::run() {
  // Per-session country sampler: session k's pick is counter step k of a
  // keyed stream (the organic branch seeks to the session id before
  // drawing), independent of how many draws any other session — expansion
  // or organic — or any other probe made.
  util::StreamRng country_stream(config_.seed, 0, "country");

  // Responses whose bytes differ from the reference objects, kept aside so
  // the expensive classification (signature extraction, SIMG parsing,
  // error-page detection) can run sharded after the serial crawl.
  struct RawModifiedObjects {
    std::optional<http::Response> html;   // differed and is not a block page
    std::optional<http::Response> image;  // differed
    std::optional<http::Response> js;     // differed
    std::optional<http::Response> css;    // differed
  };
  std::vector<RawModifiedObjects> raw;

  const std::string reference_html = http::reference_html(world_.probe_html_bytes);
  const std::string reference_image = http::reference_image();
  const std::string reference_js = http::reference_javascript();
  const std::string reference_css = http::reference_css();
  const auto reference_simg = http::parse_simg(reference_image);

  // Country weighting as in §3.2.
  std::vector<net::CountryCode> countries;
  std::vector<double> weights;
  for (const auto& [country, count] : world_.luminati->country_counts()) {
    countries.push_back(country);
    weights.push_back(static_cast<double>(count));
  }

  std::unordered_set<std::string> seen_zids;
  std::unordered_map<net::Asn, int> measured_per_as;
  std::unordered_map<net::Asn, int> limit_per_as;

  // "Return to the AS" expansion queue (§5.1): after a modification is
  // detected in an AS, keep issuing sessions pinned to that AS's country
  // until the expanded quota fills or we give up.
  struct ExpansionTarget {
    net::CountryCode country;
    net::Asn asn = 0;
    int attempts = 0;
  };
  std::vector<ExpansionTarget> expansion;

  std::size_t stall = 0;
  std::size_t session_id = 0;
  world_.metrics.begin_span("http.crawl", world_.clock.now());
  while (observations_.size() < config_.max_nodes && stall < config_.stall_limit) {
    proxy::RequestOptions options;
    if (!expansion.empty()) {
      auto& target = expansion.back();
      if (++target.attempts > 40 * config_.expanded_nodes_per_as ||
          measured_per_as[target.asn] >= limit_per_as[target.asn]) {
        expansion.pop_back();
        continue;
      }
      options.country = target.country;
    } else {
      country_stream.seek(session_id);
      options.country = countries[country_stream.weighted_index(weights)];
    }
    const std::size_t this_session = session_id;
    options.session = "http-" + std::to_string(session_id++);
    ++sessions_issued_;
    world_.metrics.add("http.sessions");

    const std::string token = "h" + std::to_string(session_id);
    const std::string host = token + ".probe.tft-study.net";

    // Evidence chain: the id is derived from this probe's country stream
    // key (which embeds its seed) plus the session counter — stable across
    // --jobs and under probe composition.
    const std::uint64_t txn_id = util::hash_combine(
        util::StreamKey{config_.seed, 0, util::purpose_tag("country")}.mixed(),
        this_session);
    world_.recorder.begin(txn_id, "http", host);

    // Identification contact: the small landing page ("/", ~2 KB) reveals
    // the node's zID and AS without spending the full object budget —
    // quota-skipped nodes cost almost nothing (the §3.4 byte cap).
    const auto id_url = *http::Url::parse("http://" + host + "/");
    // Expansion attempts are budgeted by their own counter; only organic
    // crawling counts toward the stall limit.
    const bool expanding = !expansion.empty();
    world_.recorder.event(obs::Hop::kClient, "http-probe", "fetch", "/",
                          static_cast<std::uint64_t>(world_.clock.now().micros));
    const auto id_result = world_.proxy().fetch(id_url, options);
    if (!id_result.ok()) {
      world_.metrics.add("http.failed_fetches");
      world_.recorder.end("discarded");
      if (!expanding) ++stall;
      continue;
    }
    if (!seen_zids.insert(id_result.zid).second) {
      world_.recorder.end("discarded");
      if (!expanding) ++stall;
      continue;
    }

    const net::Asn asn = id_result.exit_asn;
    const int limit = limit_per_as.contains(asn) ? limit_per_as[asn]
                                                 : config_.nodes_per_as;
    if (measured_per_as[asn] >= limit) {
      // Skip without consuming the node: an expansion may admit it later.
      world_.recorder.end("discarded");
      seen_zids.erase(id_result.zid);
      if (!expanding) ++stall;
      continue;
    }
    stall = 0;
    ++measured_per_as[asn];

    HttpNodeObservation observation;
    observation.txn_id = txn_id;
    observation.zid = id_result.zid;
    observation.exit_address = id_result.exit_address;
    observation.asn = asn;
    observation.country = id_result.exit_country;

    // The four reference objects through the same pinned session.
    const auto fetch = [&](const char* path) {
      world_.recorder.event(
          obs::Hop::kClient, "http-probe", "fetch", path,
          static_cast<std::uint64_t>(world_.clock.now().micros));
      return world_.proxy().fetch(*http::Url::parse("http://" + host + path),
                                    options);
    };

    RawModifiedObjects modified;
    if (auto html = fetch("/page.html");
        html.ok() && html.zid == observation.zid) {
      if (html.response.body != reference_html) {
        if (looks_like_blockpage(html.response)) {
          observation.html_blockpage = true;
        } else {
          observation.html_modified = true;
          modified.html = std::move(html.response);
        }
      }
    }

    bool image_differs = false;
    if (auto image = fetch("/image.simg"); image.ok() && image.zid == observation.zid) {
      if (image.response.body != reference_image) {
        image_differs = true;
        modified.image = std::move(image.response);
      } else if (reference_simg) {
        observation.image_quality = reference_simg->quality;
      }
    }
    if (auto js = fetch("/library.js"); js.ok() && js.zid == observation.zid) {
      if (js.response.body != reference_js) {
        observation.js_modified = true;
        modified.js = std::move(js.response);
      }
    }
    if (auto css = fetch("/style.css"); css.ok() && css.zid == observation.zid) {
      if (css.response.body != reference_css) {
        observation.css_modified = true;
        modified.css = std::move(css.response);
      }
    }

    // §5.1 expansion keys on "a modification was detected"; a differing
    // image counts whether it turns out to be a transcode or a replacement
    // (both are middlebox interference worth expanding on).
    const bool any_differs = observation.html_modified ||
                             observation.js_modified ||
                             observation.css_modified || image_differs;
    if ((any_differs || observation.html_blockpage) &&
        limit_per_as[asn] < config_.expanded_nodes_per_as) {
      limit_per_as[asn] = config_.expanded_nodes_per_as;
      expansion.push_back(ExpansionTarget{observation.country, asn, 0});
      world_.metrics.add("http.as_expansions");
    } else if (!limit_per_as.contains(asn)) {
      limit_per_as[asn] = config_.nodes_per_as;
    }
    world_.metrics.add("http.observations");
    if (observation.html_blockpage) world_.metrics.add("http.blockpages");
    if (any_differs) world_.metrics.add("http.modified_nodes");
    world_.recorder.end(observation.html_blockpage ? "blockpage"
                        : any_differs             ? "modified"
                                                  : "clean");
    observations_.push_back(std::move(observation));
    raw.push_back(std::move(modified));
  }
  world_.metrics.end_span(world_.clock.now());

  // Classification over the collected responses is pure per-node work on
  // const reference objects: shard it. Shard geometry depends only on the
  // node count and every shard writes only its own index range, so output
  // is byte-identical for every jobs value.
  obs::traced_for_shards(
      world_.metrics, "http.classify", world_.clock.now(),
      observations_.size(), util::shard_count(observations_.size(), 64),
      config_.jobs, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto& observation = observations_[i];
          const auto& modified = raw[i];
          if (modified.html) {
            observation.html_signature = extract_injection_signature(
                reference_html, modified.html->body);
            observation.html_delta_bytes =
                modified.html->body.size() > reference_html.size()
                    ? modified.html->body.size() - reference_html.size()
                    : 0;
          }
          if (modified.image) {
            if (const auto info = http::parse_simg(modified.image->body)) {
              // A well-formed image at different bytes: transcoded in flight.
              observation.image_modified = true;
              observation.image_quality = info->quality;
              observation.image_compression_ratio =
                  http::compression_ratio(reference_image, modified.image->body);
            } else {
              observation.image_replaced = true;  // block/error page, not an image
            }
          }
          if (modified.js) {
            observation.js_error_page =
                looks_like_error_page(*modified.js, "javascript");
          }
          if (modified.css) {
            observation.css_error_page =
                looks_like_error_page(*modified.css, "css");
          }
        }
      });

  // Refine the crawl-time verdicts with what classification learned. The
  // sharded pass never touches the recorder; amending serially here, in
  // observation order, keeps the trace byte-identical for every --jobs.
  for (const auto& observation : observations_) {
    const char* verdict = observation.html_blockpage ? "blockpage"
                          : observation.html_modified ? "injected"
                          : observation.image_replaced ? "replaced"
                          : observation.image_modified ? "transcoded"
                          : observation.js_modified || observation.css_modified
                              ? "modified"
                              : nullptr;
    if (verdict != nullptr) {
      world_.recorder.amend_verdict(observation.txn_id, verdict, "");
    }
  }

  return observations_.size();
}

HttpReport analyze_http(const world::World& world,
                        const std::vector<HttpNodeObservation>& observations,
                        const HttpAnalysisConfig& config) {
  HttpReport report;

  std::set<net::Asn> ases;
  std::set<net::CountryCode> countries;
  struct AsAccumulator {
    std::size_t total = 0;
    std::size_t html_modified = 0;
    std::size_t image_modified = 0;
    std::set<int> ratio_buckets;
    std::vector<double> ratios;
  };
  std::map<net::Asn, AsAccumulator> by_as;
  struct SignatureAccumulator {
    std::size_t nodes = 0;
    std::set<net::CountryCode> countries;
    std::set<net::Asn> ases;
  };
  std::map<std::string, SignatureAccumulator> by_signature;

  for (const auto& observation : observations) {
    ++report.total_nodes;
    ases.insert(observation.asn);
    countries.insert(observation.country);

    auto& as_row = by_as[observation.asn];
    ++as_row.total;

    if (observation.html_blockpage) {
      ++report.html_blockpages;
      report.evidence["blockpage"].push_back(observation.txn_id);
    }
    if (observation.html_modified) {
      ++report.html_modified;
      report.evidence["html_modified"].push_back(observation.txn_id);
      ++as_row.html_modified;
      auto& signature = by_signature[observation.html_signature];
      ++signature.nodes;
      signature.countries.insert(observation.country);
      signature.ases.insert(observation.asn);
    }
    if (observation.image_modified) {
      ++report.image_modified;
      report.evidence["image_modified"].push_back(observation.txn_id);
      ++as_row.image_modified;
      const int bucket = static_cast<int>(
          std::lround(observation.image_compression_ratio / config.ratio_bucket));
      if (as_row.ratio_buckets.insert(bucket).second) {
        as_row.ratios.push_back(observation.image_compression_ratio);
      }
    }
    if (observation.js_modified) {
      ++report.js_modified;
      report.evidence["js_modified"].push_back(observation.txn_id);
    }
    if (observation.css_modified) {
      ++report.css_modified;
      report.evidence["css_modified"].push_back(observation.txn_id);
    }
    if (observation.js_error_page) ++report.js_error_pages;
    if (observation.css_error_page) ++report.css_error_pages;
  }
  report.unique_ases = ases.size();
  report.unique_countries = countries.size();

  for (const auto& [signature, accumulator] : by_signature) {
    report.injections.push_back(InjectionRow{signature, accumulator.nodes,
                                             accumulator.countries.size(),
                                             accumulator.ases.size()});
  }
  std::sort(report.injections.begin(), report.injections.end(),
            [](const InjectionRow& a, const InjectionRow& b) {
              return a.nodes > b.nodes;
            });

  for (const auto& [asn, accumulator] : by_as) {
    if (accumulator.total < config.min_nodes_per_as) continue;
    if (accumulator.image_modified > 0) {
      TranscodeRow row;
      row.asn = asn;
      row.modified = accumulator.image_modified;
      row.total = accumulator.total;
      row.ratios = accumulator.ratios;
      std::sort(row.ratios.begin(), row.ratios.end());
      if (const auto org = world.topology.org_of(asn)) {
        if (const auto* info = world.topology.organization(*org)) {
          row.isp = info->name;
          row.country = info->country;
          row.mobile_isp = info->kind == net::OrgKind::kMobileIsp;
        }
      }
      report.transcoders.push_back(std::move(row));
    }
    if (accumulator.html_modified == accumulator.total) {
      std::string isp = "(unknown)";
      if (const auto org = world.topology.org_of(asn)) {
        if (const auto* info = world.topology.organization(*org)) isp = info->name;
      }
      report.fully_modified_ases.emplace_back(asn, isp);
    }
  }
  std::sort(report.transcoders.begin(), report.transcoders.end(),
            [](const TranscodeRow& a, const TranscodeRow& b) {
              return a.ratio() > b.ratio();
            });

  return report;
}

}  // namespace tft::core
