// Ablation (§4.4): the paper measures 4.8% NXDOMAIN hijacking while the
// 2011 Netalyzr study reported 24% — and conjectures the difference comes
// partly from self-selection: "our results may be somewhat less biased by
// users who run Netalyzr because they suspect problems with their network
// configuration."
//
// This bench simulates recruited panels: users with a network problem are
// w times likelier to run the diagnostic tool. The proxy-network panel
// (w=1, uniform) recovers the population rate; recruited panels inflate it.
#include "common.hpp"

#include "tft/util/rng.hpp"
#include "tft/util/strings.hpp"
#include "tft/world/world.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.05);
  auto world = tft::bench::build_paper_world(options);

  // Population ground truth.
  const auto& nodes = world->luminati->nodes();
  std::vector<bool> hijacked(nodes.size());
  std::size_t population_hijacked = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto* truth = world->truth.find(nodes[i]->zid());
    hijacked[i] =
        truth != nullptr && truth->dns_hijack != tft::world::DnsHijackSource::kNone;
    if (hijacked[i]) ++population_hijacked;
  }
  const double population_rate =
      static_cast<double>(population_hijacked) / static_cast<double>(nodes.size());

  std::cout << tft::stats::banner("Ablation: recruited-panel self-selection bias");
  std::cout << "population: " << nodes.size() << " nodes, true hijack rate "
            << tft::util::format_percent(population_rate) << "\n\n";

  const std::size_t panel_size =
      std::min<std::size_t>(nodes.size() / 4, 20000);
  tft::stats::Table table({"Panel", "Bias w", "Panel size", "Measured rate",
                           "Inflation"});
  tft::util::Rng rng(options.seed);
  for (const double w : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    // Weighted sampling without replacement: affected users are w times
    // likelier to volunteer for the diagnostic tool.
    std::size_t sampled = 0, sampled_hijacked = 0;
    std::vector<bool> taken(nodes.size(), false);
    while (sampled < panel_size) {
      const std::size_t index = rng.index(nodes.size());
      if (taken[index]) continue;
      const double accept = hijacked[index] ? 1.0 : 1.0 / w;
      if (!rng.chance(accept)) continue;
      taken[index] = true;
      ++sampled;
      if (hijacked[index]) ++sampled_hijacked;
    }
    const double rate = static_cast<double>(sampled_hijacked) / panel_size;
    table.add_row({w == 1.0 ? "proxy network (uniform)" : "recruited volunteers",
                   tft::util::format_double(w, 0), std::to_string(panel_size),
                   tft::util::format_percent(rate),
                   tft::util::format_double(rate / population_rate, 1) + "x"});
  }
  std::cout << table.render() << "\n";
  std::cout << "Reading: a w=5..10 self-selection bias is enough to lift a\n"
               "4.8% population rate into the ~20% range Netalyzr reported —\n"
               "supporting the paper's conjecture that proxy-network panels\n"
               "are closer to the true population rate.\n";
  return 0;
}
