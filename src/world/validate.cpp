#include "tft/world/validate.hpp"

#include <set>

#include "tft/tls/verify.hpp"

namespace tft::world {

namespace {

void check(std::vector<std::string>& problems, bool ok, std::string message) {
  if (!ok) problems.push_back(std::move(message));
}

}  // namespace

std::vector<std::string> validate(const World& world) {
  std::vector<std::string> problems;

  check(problems, world.luminati != nullptr, "no proxy service built");
  check(problems, world.measurement_zone != nullptr, "no measurement DNS zone");
  check(problems, world.measurement_web != nullptr, "no measurement web server");
  check(problems, world.web.find(world.measurement_web_address) != nullptr,
        "measurement web server not reachable at its address");
  check(problems, world.google_dns != nullptr, "no Google anycast group");
  if (!problems.empty()) return problems;  // the rest needs these

  check(problems, world.google_dns->instance_count() >= 2,
        "fewer than 2 Google anycast instances (the overlap filter needs >1)");
  check(problems, !world.google_netblocks.empty(), "no Google netblocks recorded");

  // The wildcard probe zone must resolve to the measurement web server for
  // a sample name.
  {
    const auto query =
        dns::Message::query(1, *dns::DnsName::parse("validate.probe.tft-study.net"));
    // const_cast: handle() logs the query; validation-time logging is
    // harmless and cleared below.
    auto* zone = const_cast<dns::AuthoritativeServer*>(world.measurement_zone.get());
    const std::size_t log_before = zone->query_log().size();
    const auto response =
        zone->handle(query, net::Ipv4Address(192, 0, 2, 200), world.clock.now());
    check(problems, response.first_a() == world.measurement_web_address,
          "probe wildcard does not resolve to the measurement web server");
    check(problems, zone->query_log().size() == log_before + 1,
          "measurement zone does not log queries");
  }

  // Node invariants: unique zIDs/addresses, topology-consistent AS and
  // country, a resolvable DNS configuration.
  std::set<std::string> zids;
  std::set<std::uint32_t> addresses;
  std::size_t broken_nodes = 0;
  for (const auto& node : world.luminati->nodes()) {
    bool node_ok = true;
    node_ok = node_ok && zids.insert(node->zid()).second;
    node_ok = node_ok && addresses.insert(node->address().value()).second;
    const auto asn = world.topology.origin_as(node->address());
    node_ok = node_ok && asn.has_value() && *asn == node->asn();
    const auto country = world.topology.country_of(node->asn());
    node_ok = node_ok && country.has_value() && *country == node->country();
    node_ok = node_ok && world.truth.find(node->zid()) != nullptr;
    if (!node_ok) ++broken_nodes;
  }
  check(problems, broken_nodes == 0,
        std::to_string(broken_nodes) + " nodes with broken identity/topology");

  // HTTPS sites: unique addresses, reachable endpoints presenting their
  // genuine chains; the three invalid sites present and actually invalid.
  const tls::CertificateVerifier verifier(&world.public_roots);
  std::set<std::uint32_t> site_addresses;
  std::size_t broken_sites = 0;
  int invalid_sites = 0;
  for (const auto& site : world.https_sites) {
    bool site_ok = site_addresses.insert(site.address.value()).second;
    const auto* chain = world.tls_endpoints.handshake(site.address, site.host);
    site_ok = site_ok && chain != nullptr && !chain->empty();
    // The endpoint must present exactly the recorded genuine chain —
    // the HTTPS probe's invalid-site check depends on that record.
    site_ok = site_ok && !site.genuine_chain.empty() &&
              chain->front().fingerprint() == site.genuine_chain.front().fingerprint();
    if (site_ok) {
      const bool verifies =
          verifier.verify(*chain, site.host, world.clock.now() + sim::Duration::hours(1))
              .ok();
      if (site.site_class == HttpsSite::Class::kInvalid) {
        ++invalid_sites;
        site_ok = !verifies;
      } else {
        site_ok = verifies;
      }
    }
    if (!site_ok) ++broken_sites;
  }
  check(problems, broken_sites == 0,
        std::to_string(broken_sites) + " HTTPS sites broken or mis-validated");
  check(problems, invalid_sites == 3,
        "expected exactly 3 deliberately-invalid sites, found " +
            std::to_string(invalid_sites));

  return problems;
}

}  // namespace tft::world
