// libFuzzer entry point for the json_stream target (see src/testing/fuzz.cpp):
// byte programs drive JsonWriter with and without a streaming sink; any byte
// divergence between the two documents aborts. Build with -DTFT_FUZZ=ON.
#include <cstddef>
#include <cstdint>

#include "tft/testing/fuzz.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return tft::testing::fuzz_one("json_stream", data, size);
}
