#include "tft/net/server/framing.hpp"

#include <charconv>

#include "tft/tls/codec.hpp"
#include "tft/util/bytes.hpp"
#include "tft/util/strings.hpp"

namespace tft::net::server {

using util::ByteReader;
using util::ByteWriter;
using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

constexpr std::string_view kCustomerPrefix = "customer-tft-zone-static";
constexpr std::string_view kAuthScheme = "Lum ";
constexpr std::string_view kHelloMagic = "TFTH";
constexpr std::string_view kReplyMagic = "TFTR";

}  // namespace

std::string format_credentials(const proxy::RequestOptions& options) {
  std::string out(kCustomerPrefix);
  if (options.country) {
    out += "-country-";
    out += *options.country;
  }
  if (options.dns_remote) out += "-dns-remote";
  if (options.session) {
    // Always last: session ids contain dashes ("dns-42").
    out += "-session-";
    out += *options.session;
  }
  return out;
}

Result<proxy::RequestOptions> parse_credentials(std::string_view text) {
  if (!text.starts_with(kCustomerPrefix)) {
    return make_error(ErrorCode::kParseError,
                      "credentials must start with " +
                          std::string(kCustomerPrefix));
  }
  text.remove_prefix(kCustomerPrefix.size());

  proxy::RequestOptions options;
  if (text.starts_with("-country-")) {
    text.remove_prefix(9);
    const auto dash = text.find('-');
    const std::string_view value =
        dash == std::string_view::npos ? text : text.substr(0, dash);
    if (value.empty()) {
      return make_error(ErrorCode::kParseError, "empty country in credentials");
    }
    options.country = std::string(value);
    text.remove_prefix(value.size());
  }
  if (text.starts_with("-dns-remote")) {
    options.dns_remote = true;
    text.remove_prefix(11);
  }
  if (text.starts_with("-session-")) {
    options.session = std::string(text.substr(9));
    text = {};
  }
  if (!text.empty()) {
    return make_error(ErrorCode::kParseError,
                      "trailing credential fields: " + std::string(text));
  }
  return options;
}

Result<ProxyRequestHead> parse_proxy_request(std::string_view wire) {
  auto request = http::Request::parse(wire);
  if (!request.ok()) return request.error();

  ProxyRequestHead head;
  if (const auto connection = request->headers.get("Connection");
      connection && util::iequals(*connection, "close")) {
    head.close = true;
  }
  if (const auto auth = request->headers.get("Proxy-Authorization")) {
    if (!auth->starts_with(kAuthScheme)) {
      return make_error(ErrorCode::kParseError,
                        "unsupported Proxy-Authorization scheme");
    }
    auto options = parse_credentials(auth->substr(kAuthScheme.size()));
    if (!options.ok()) return options.error();
    head.options = *std::move(options);
  }

  if (request->method == http::Method::kConnect) {
    head.kind = ProxyRequestHead::Kind::kConnect;
    const auto colon = request->target.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return make_error(ErrorCode::kParseError,
                        "CONNECT target must be host:port");
    }
    const std::string_view host =
        std::string_view(request->target).substr(0, colon);
    const std::string_view port_text =
        std::string_view(request->target).substr(colon + 1);
    auto address = Ipv4Address::parse(host);
    if (!address.ok()) {
      return make_error(ErrorCode::kParseError,
                        "CONNECT requires a literal IPv4 destination, got " +
                            std::string(host));
    }
    std::uint32_t port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port_text.empty() || port == 0 || port > 65535) {
      return make_error(ErrorCode::kParseError,
                        "bad CONNECT port: " + std::string(port_text));
    }
    head.connect_address = *address;
    head.connect_port = static_cast<std::uint16_t>(port);
    return head;
  }

  if (request->method != http::Method::kGet) {
    return make_error(ErrorCode::kProtocolViolation,
                      "only GET and CONNECT are served");
  }
  auto url = request->target_url();
  if (!url.ok()) {
    return make_error(ErrorCode::kParseError,
                      "GET target must be an absolute URL: " + url.error().message);
  }
  head.kind = ProxyRequestHead::Kind::kGet;
  head.url = *std::move(url);
  return head;
}

std::string build_proxy_get(const http::Url& url,
                            const proxy::RequestOptions& options) {
  http::Request request = http::Request::proxy_get(url);
  request.headers.set("Proxy-Authorization",
                      std::string(kAuthScheme) + format_credentials(options));
  return request.serialize();
}

std::string build_connect(Ipv4Address destination, std::uint16_t port,
                          const proxy::RequestOptions& options) {
  http::Request request = http::Request::connect(destination.to_string(), port);
  request.headers.set("Proxy-Authorization",
                      std::string(kAuthScheme) + format_credentials(options));
  return request.serialize();
}

std::string encode_attempts(const std::vector<proxy::AttemptInfo>& attempts) {
  std::string out;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if (i > 0) out += ',';
    out += attempts[i].zid;
    out += ':';
    out += attempts[i].error.empty() ? "ok" : attempts[i].error;
  }
  return out;
}

Result<std::vector<proxy::AttemptInfo>> decode_attempts(std::string_view text) {
  std::vector<proxy::AttemptInfo> out;
  if (text.empty()) return out;
  for (const auto piece : util::split(text, ',')) {
    const auto colon = piece.find(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == piece.size()) {
      return make_error(ErrorCode::kParseError,
                        "malformed attempt entry: " + std::string(piece));
    }
    proxy::AttemptInfo attempt;
    attempt.zid = std::string(piece.substr(0, colon));
    const std::string_view status = piece.substr(colon + 1);
    attempt.error = status == "ok" ? std::string{} : std::string(status);
    out.push_back(std::move(attempt));
  }
  return out;
}

std::string encode_tunnel_hello(const TunnelHello& hello) {
  ByteWriter writer;
  writer.bytes(kHelloMagic);
  writer.u16(static_cast<std::uint16_t>(hello.sni.size()));
  writer.bytes(hello.sni);
  return std::move(writer).take();
}

Result<TunnelHello> decode_tunnel_hello(std::string_view payload) {
  ByteReader reader(payload);
  const auto magic = reader.bytes(kHelloMagic.size());
  if (!magic.ok() || *magic != kHelloMagic) {
    return make_error(ErrorCode::kParseError, "bad tunnel hello magic");
  }
  const auto length = reader.u16();
  if (!length.ok()) return length.error();
  const auto sni = reader.bytes(*length);
  if (!sni.ok()) return sni.error();
  if (!reader.at_end()) {
    return make_error(ErrorCode::kParseError,
                      "trailing bytes after tunnel hello");
  }
  TunnelHello hello;
  hello.sni = std::string(*sni);
  return hello;
}

std::string encode_tunnel_reply(const TunnelReply& reply) {
  ByteWriter writer;
  writer.bytes(kReplyMagic);
  const std::string_view status = proxy::to_string(reply.status);
  writer.u8(static_cast<std::uint8_t>(status.size()));
  writer.bytes(status);
  writer.u16(static_cast<std::uint16_t>(reply.zid.size()));
  writer.bytes(reply.zid);
  writer.u32(reply.exit_address.value());
  writer.u8(static_cast<std::uint8_t>(reply.exit_country.size()));
  writer.bytes(reply.exit_country);
  const std::string chain = tls::encode_chain(reply.chain);
  writer.u32(static_cast<std::uint32_t>(chain.size()));
  writer.bytes(chain);
  return std::move(writer).take();
}

Result<TunnelReply> decode_tunnel_reply(std::string_view payload) {
  ByteReader reader(payload);
  const auto magic = reader.bytes(kReplyMagic.size());
  if (!magic.ok() || *magic != kReplyMagic) {
    return make_error(ErrorCode::kParseError, "bad tunnel reply magic");
  }
  TunnelReply reply;

  const auto status_length = reader.u8();
  if (!status_length.ok()) return status_length.error();
  const auto status_text = reader.bytes(*status_length);
  if (!status_text.ok()) return status_text.error();
  auto status = proxy::parse_proxy_status(*status_text);
  if (!status.ok()) return status.error();
  reply.status = *status;

  const auto zid_length = reader.u16();
  if (!zid_length.ok()) return zid_length.error();
  const auto zid = reader.bytes(*zid_length);
  if (!zid.ok()) return zid.error();
  reply.zid = std::string(*zid);

  const auto address = reader.u32();
  if (!address.ok()) return address.error();
  reply.exit_address = Ipv4Address(*address);

  const auto country_length = reader.u8();
  if (!country_length.ok()) return country_length.error();
  const auto country = reader.bytes(*country_length);
  if (!country.ok()) return country.error();
  reply.exit_country = std::string(*country);

  const auto chain_length = reader.u32();
  if (!chain_length.ok()) return chain_length.error();
  const auto chain_bytes = reader.bytes(*chain_length);
  if (!chain_bytes.ok()) return chain_bytes.error();
  auto chain = tls::decode_chain(*chain_bytes);
  if (!chain.ok()) return chain.error();
  reply.chain = *std::move(chain);

  if (!reader.at_end()) {
    return make_error(ErrorCode::kParseError,
                      "trailing bytes after tunnel reply");
  }
  return reply;
}

std::string frame(std::string_view payload) {
  ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.bytes(payload);
  return std::move(writer).take();
}

Result<void> FrameReader::feed(std::string_view bytes) {
  buffer_.append(bytes);
  while (buffer_.size() >= 4) {
    ByteReader reader(buffer_);
    const auto length = reader.u32();
    if (!length.ok()) return length.error();
    if (*length == 0) {
      return make_error(ErrorCode::kProtocolViolation, "empty tunnel frame");
    }
    if (*length > max_frame_bytes_) {
      return make_error(ErrorCode::kOutOfRange,
                        "tunnel frame exceeds " +
                            std::to_string(max_frame_bytes_) + " bytes");
    }
    if (buffer_.size() < 4 + *length) break;
    ready_.push_back(buffer_.substr(4, *length));
    buffer_.erase(0, 4 + *length);
  }
  return {};
}

std::optional<std::string> FrameReader::next_frame() {
  if (ready_.empty()) return std::nullopt;
  std::string out = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return out;
}

}  // namespace tft::net::server
