// DNS-layer interception that is NOT the resolver's own doing (§4.3.3):
// transparent DNS proxies on the ISP path and NXDOMAIN-rewriting software
// on the host. The key observable difference from resolver-level hijacking:
// these fire even when the node is configured to use a clean public
// resolver such as 8.8.8.8.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tft/dns/message.hpp"
#include "tft/middlebox/interceptor.hpp"

namespace tft::middlebox {

class DnsInterceptor {
 public:
  virtual ~DnsInterceptor() = default;
  virtual std::string_view name() const = 0;

  /// Rewrite the configured resolver address (transparent proxy: the query
  /// never reaches the resolver the user chose). nullopt = leave as-is.
  virtual std::optional<net::Ipv4Address> redirect_resolver(
      net::Ipv4Address configured) {
    (void)configured;
    return std::nullopt;
  }

  /// Rewrite a response in flight. nullopt = pass through.
  virtual std::optional<dns::Message> on_response(const dns::Message& query,
                                                  const dns::Message& response,
                                                  FetchContext& context) {
    (void)query;
    (void)response;
    (void)context;
    return std::nullopt;
  }
};

using DnsInterceptorList = std::vector<std::shared_ptr<DnsInterceptor>>;

/// Rewrites NXDOMAIN responses to an A record for `redirect_address` —
/// the on-path / on-host equivalent of a hijacking resolver.
class NxdomainRewriter : public DnsInterceptor {
 public:
  struct Config {
    std::string name;  // "deutsche-telekom-path-box", "norton-safe-web", ...
    net::Ipv4Address redirect_address;
    double probability = 1.0;
    std::uint32_t ttl = 60;
  };

  explicit NxdomainRewriter(Config config) : config_(std::move(config)) {}

  std::string_view name() const override { return config_.name; }
  std::optional<dns::Message> on_response(const dns::Message& query,
                                          const dns::Message& response,
                                          FetchContext& context) override;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Forces all DNS traffic to the ISP's resolver regardless of what the
/// host configured.
class TransparentDnsProxy : public DnsInterceptor {
 public:
  TransparentDnsProxy(std::string name, net::Ipv4Address isp_resolver)
      : name_(std::move(name)), isp_resolver_(isp_resolver) {}

  std::string_view name() const override { return name_; }
  std::optional<net::Ipv4Address> redirect_resolver(net::Ipv4Address) override {
    return isp_resolver_;
  }

 private:
  std::string name_;
  net::Ipv4Address isp_resolver_;
};

/// Apply a DNS interceptor list: resolver redirection first (last redirect
/// wins), then response rewriting in order (first rewrite wins).
net::Ipv4Address effective_resolver(const DnsInterceptorList& chain,
                                    net::Ipv4Address configured);
dns::Message intercepted_response(const DnsInterceptorList& chain,
                                  const dns::Message& query, dns::Message response,
                                  FetchContext& context);

}  // namespace tft::middlebox
