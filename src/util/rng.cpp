#include "tft/util/rng.hpp"

namespace tft::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork() {
  // Seed the child through the full splitmix64 expansion rather than
  // copying raw xoshiro outputs into its state words: raw outputs are
  // correlated with the parent's upcoming draws, and reseed() is the
  // derivation every other seed in the repo goes through.
  return Rng(next_u64());
}

}  // namespace tft::util
