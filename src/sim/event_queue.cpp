#include "tft/sim/event_queue.hpp"

#include <utility>

namespace tft::sim {

void EventQueue::schedule_at(Instant when, Handler handler) {
  if (when < now_) when = now_;
  queue_.push(Entry{when, next_sequence_++, std::move(handler)});
}

void EventQueue::schedule_after(Duration delay, Handler handler) {
  schedule_at(now_ + delay, std::move(handler));
}

std::size_t EventQueue::run_until(Instant deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the handler handle instead (std::function copy is cheap enough
    // relative to simulated work).
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    entry.handler();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    entry.handler();
    ++executed;
  }
  return executed;
}

}  // namespace tft::sim
