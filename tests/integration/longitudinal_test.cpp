// Longitudinal measurement: deploy and retire a hijacking box between
// rounds and check the time series picks the change up — the §9
// continuous-measurement use case.
#include <gtest/gtest.h>

#include "tft/core/longitudinal.hpp"
#include "tft/world/world.hpp"

namespace tft::core {
namespace {

TEST(LongitudinalTest, DetectsDeploymentAndRetirement) {
  auto world = world::build_world(world::mini_spec(), 1.0, 808);
  ASSERT_TRUE(world->isp_resolvers.contains("US ISP 1"));

  LongitudinalConfig config;
  config.rounds = 5;
  config.interval = sim::Duration::hours(24 * 7);
  config.probe.target_nodes = 0;
  config.probe.stall_limit = 1500;
  config.analysis.min_nodes_per_server = 5;
  config.analysis.min_nodes_per_country = 30;

  LongitudinalDnsStudy study(*world, config);
  // Rounds 0-1: baseline. Before round 2: "US ISP 1" deploys a search-assist
  // box. Before round 4: it retires it.
  study.set_between_rounds([](int next_round, world::World& w) {
    if (next_round == 2) {
      const std::size_t changed = w.set_isp_hijack(
          "US ISP 1",
          dns::NxdomainHijackPolicy{net::Ipv4Address(203, 0, 113, 199), 60, 1.0});
      ASSERT_GT(changed, 0u);
    }
    if (next_round == 4) {
      ASSERT_GT(w.set_isp_hijack("US ISP 1", std::nullopt), 0u);
    }
  });

  const auto rounds = study.run();
  ASSERT_EQ(rounds.size(), 5u);

  // Baseline rounds agree with each other and don't list US ISP 1.
  EXPECT_FALSE(rounds[0].isp_listed("US ISP 1"));
  EXPECT_FALSE(rounds[1].isp_listed("US ISP 1"));
  // Deployment visible in rounds 2-3.
  EXPECT_TRUE(rounds[2].isp_listed("US ISP 1"));
  EXPECT_TRUE(rounds[3].isp_listed("US ISP 1"));
  EXPECT_GT(rounds[2].ratio, rounds[0].ratio + 0.02);
  // Retirement visible in round 4.
  EXPECT_FALSE(rounds[4].isp_listed("US ISP 1"));
  EXPECT_LT(rounds[4].ratio, rounds[2].ratio);

  // The original hijackers (Verizon) are present throughout.
  for (const auto& round : rounds) {
    EXPECT_TRUE(round.isp_listed("Verizon")) << "round " << round.round;
  }

  const std::string rendered = render_longitudinal(rounds);
  EXPECT_NE(rendered.find("US ISP 1"), std::string::npos);
  EXPECT_NE(rendered.find("R4"), std::string::npos);
}

TEST(LongitudinalTest, StableWorldGivesStableSeries) {
  auto world = world::build_world(world::mini_spec(), 1.0, 809);
  LongitudinalConfig config;
  config.rounds = 3;
  config.probe.target_nodes = 0;
  config.probe.stall_limit = 1500;
  LongitudinalDnsStudy study(*world, config);
  const auto rounds = study.run();
  ASSERT_EQ(rounds.size(), 3u);
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    // Same world, fresh crawls: rates agree within a small band.
    EXPECT_NEAR(rounds[i].ratio, rounds[0].ratio, 0.02) << i;
    EXPECT_GT(rounds[i].time, rounds[i - 1].time);
  }
}

TEST(LongitudinalTest, CheckpointedResumeReproducesUninterruptedRun) {
  LongitudinalConfig config;
  config.rounds = 4;
  config.probe.target_nodes = 0;
  config.probe.stall_limit = 1500;

  // Uninterrupted reference run.
  auto full_world = world::build_world(world::mini_spec(), 1.0, 810);
  LongitudinalDnsStudy full_study(*full_world, config);
  const LongitudinalResult full = full_study.run_partial(-1);
  ASSERT_EQ(full.rounds.size(), 4u);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.checkpoint.next_round, 4u);
  ASSERT_EQ(full.checkpoint.streams.size(), 4u);

  // Same study stopped after two rounds, checkpoint serialized through the
  // JSON wire format (as a real operator would persist it), then resumed
  // on an identically-built world that ran the same prefix.
  auto split_world = world::build_world(world::mini_spec(), 1.0, 810);
  LongitudinalDnsStudy split_study(*split_world, config);
  const LongitudinalResult prefix = split_study.run_partial(2);
  ASSERT_EQ(prefix.rounds.size(), 2u);
  EXPECT_FALSE(prefix.complete);
  EXPECT_EQ(prefix.checkpoint.next_round, 2u);

  const auto reloaded =
      util::parse_stream_checkpoint(util::stream_checkpoint_json(prefix.checkpoint));
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
  EXPECT_EQ(*reloaded, prefix.checkpoint);

  const auto resumed = split_study.resume(*reloaded);
  ASSERT_TRUE(resumed.ok()) << resumed.error().message;
  ASSERT_EQ(resumed->rounds.size(), 2u);
  EXPECT_TRUE(resumed->complete);

  // Stitched series must be byte-identical to the uninterrupted run —
  // compare the canonical rendered report including the final checkpoint.
  std::vector<LongitudinalRound> stitched = prefix.rounds;
  stitched.insert(stitched.end(), resumed->rounds.begin(), resumed->rounds.end());
  EXPECT_EQ(render_longitudinal(stitched, resumed->checkpoint),
            render_longitudinal(full.rounds, full.checkpoint));
}

TEST(LongitudinalTest, ResumeRejectsForeignCheckpoints) {
  LongitudinalConfig config;
  config.rounds = 3;
  config.probe.target_nodes = 0;
  config.probe.stall_limit = 1500;
  auto world = world::build_world(world::mini_spec(), 1.0, 811);
  LongitudinalDnsStudy study(*world, config);
  const LongitudinalResult prefix = study.run_partial(1);
  ASSERT_EQ(prefix.checkpoint.next_round, 1u);

  // Beyond the configured round count.
  util::StreamCheckpoint beyond = prefix.checkpoint;
  beyond.next_round = 7;
  EXPECT_FALSE(study.resume(beyond).ok());

  // Stream count disagrees with the completed-round count.
  util::StreamCheckpoint truncated = prefix.checkpoint;
  truncated.streams.clear();
  EXPECT_FALSE(study.resume(truncated).ok());

  // A checkpoint from a different study seed must be rejected, not
  // silently diverge.
  util::StreamCheckpoint foreign = prefix.checkpoint;
  foreign.streams[0].key.study_seed ^= 1;
  const auto rejected = study.resume(foreign);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error().message.find("does not match"), std::string::npos);
}

}  // namespace
}  // namespace tft::core
