// Compact, deterministic description of the exit-node population: the
// builder's assignment phases write ranges + sparse overlays instead of
// materialized per-node records, and every node's full configuration
// (addresses, resolver choice, interceptor chains, ground truth) is
// regenerated on demand from keyed util::StreamRng streams. Node `i` is
// byte-identical whether it is materialized eagerly, lazily, alone, or
// after any other node — the property the sharded study mode rests on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tft/middlebox/dns_interceptor.hpp"
#include "tft/middlebox/http_modifiers.hpp"
#include "tft/middlebox/interceptor.hpp"
#include "tft/middlebox/tls_interceptor.hpp"
#include "tft/net/topology.hpp"
#include "tft/proxy/exit_node.hpp"
#include "tft/smtp/interceptor.hpp"
#include "tft/world/ground_truth.hpp"

namespace tft::world {

/// One `create_nodes` call: a contiguous run of global node indices sharing
/// an ISP and a resolver-assignment policy. Per-node facts (zID, address,
/// ASN, resolver pick, thin-spread hijack truth, transcoder membership) are
/// pure functions of this record and the node's keyed streams.
struct PlanRange {
  std::uint32_t begin = 0;
  std::uint32_t count = 0;
  std::uint32_t isp = 0;
  std::uint32_t base_host = 1000;  // per-AS host counter at creation
  bool force_isp_resolver = false;
  double google_fraction = 0;
  double public_fraction = 0;
  DnsHijackSource hijack_source = DnsHijackSource::kNone;
  std::uint32_t hijack_operator = 0;  // string-table id
  /// Country-fill thin-spread hijack: ISP-resolver users fail a
  /// stable_hijack_roll against this probability (0 = no generic hijack).
  double generic_hijack_probability = 0;
  std::uint32_t generic_operator = 0;  // string-table id (the ISP's name)
  std::uint32_t transcoder = 0;        // 1 + index into NodePlan::transcoders
};

struct PlanIsp {
  std::string name;
  net::CountryCode country;
  std::vector<net::Asn> asns;
  std::vector<net::Ipv4Prefix> prefixes;  // parallel to asns
  std::vector<net::Ipv4Address> resolver_ips;
  std::vector<std::uint32_t> ranges;  // indices into NodePlan::ranges
};

/// Overlay interceptor references: the kind selects the instance table and
/// the position in the generated chain, the low bits index into it.
enum class PlanTokenKind : std::uint32_t {
  kDnsShared = 1,           // dns_shared, appended
  kHttpPre = 2,             // http_shared, appended before the transcoder
  kHttpPost = 3,            // http_shared, appended after the transcoder
  kHttpInjectorConfig = 4,  // injector_configs: fresh HtmlInjector per node
  kTlsConfig = 5,           // tls_configs: fresh CertReplacer per node
  kSmtpShared = 6,          // smtp_shared, appended
};

constexpr std::uint32_t plan_token(PlanTokenKind kind, std::size_t id) {
  return (static_cast<std::uint32_t>(kind) << 28) |
         static_cast<std::uint32_t>(id);
}
constexpr PlanTokenKind plan_token_kind(std::uint32_t token) {
  return static_cast<PlanTokenKind>(token >> 28);
}
constexpr std::uint32_t plan_token_id(std::uint32_t token) {
  return token & 0x0fff'ffffu;
}

/// Cross-cutting assignments for one node. Only nodes an assignment phase
/// actually touched carry an overlay — a small fraction of the population —
/// so the plan stays O(assignments), not O(world).
struct NodeOverlay {
  std::vector<std::uint32_t> tokens;  // plan_token(), in assignment order
  std::uint32_t monitor = 0;          // 1 + http_shared id, chain front
  std::uint32_t vpn = 0;              // 1 + http_shared id, before monitor
  bool has_resolver = false;          // resolver override below applies
  net::Ipv4Address resolver;
  std::int8_t uses_google = -1;  // -1 inherit, else 0/1 override
  bool truth_dns_set = false;    // dns truth overridden (possibly to kNone)
  DnsHijackSource truth_dns = DnsHijackSource::kNone;
  std::uint32_t truth_dns_operator = 0;  // string-table ids from here down
  std::uint32_t truth_html_injector = 0;
  std::uint32_t truth_content_blocker = 0;
  std::uint32_t truth_object_replacer = 0;
  std::uint32_t truth_cert_replacer = 0;
  std::uint32_t truth_monitor = 0;
  std::uint32_t truth_smtp = 0;
  std::uint32_t truth_smtp_kind = 0;
  bool uses_vpn = false;
};

class NodePlan {
 public:
  struct Facts {
    std::string zid;
    net::Ipv4Address address;
    net::Asn asn = 0;
    net::CountryCode country;
    std::uint32_t isp = 0;
    net::Ipv4Address resolver;  // post-overlay
    bool uses_google = false;   // post-overlay
    /// Creation-time values, before any overlay — what range-level ground
    /// truth (resolver hijack, thin-spread hijack) was decided against.
    bool base_uses_google = false;
    bool base_on_isp_resolver = false;
  };

  std::size_t node_count() const noexcept { return total_nodes; }
  const PlanRange& range_of(std::size_t index) const;
  const NodeOverlay* overlay_of(std::size_t index) const;

  std::string zid(std::size_t index) const;
  Facts facts(std::size_t index) const;
  NodeTruth node_truth(std::size_t index) const;
  proxy::ExitNodeAgent::Config node_config(std::size_t index) const;

  /// The transcoder instance the node's keyed "transcode" stream picks, or
  /// null when the range has none / the node is outside the fraction.
  std::shared_ptr<middlebox::ImageTranscoder> transcoder_for(
      const Facts& facts, const PlanRange& range) const;

  /// Country directory (node-creation order within each country). Call
  /// seal() once after planning to build it.
  void seal();
  const std::map<net::CountryCode, std::size_t>& country_totals() const {
    return country_totals_;
  }
  std::size_t country_count(const net::CountryCode& country) const;
  /// Global index of the `slot`-th node of `country`, creation order —
  /// the same order SuperProxy::add_exit_node would have seen them in.
  std::size_t country_slot(const net::CountryCode& country,
                           std::size_t slot) const;

  std::uint32_t intern(std::string_view text);
  const std::string& text(std::uint32_t id) const { return strings[id]; }

  // --- plan data, written by the builder -----------------------------------
  std::uint64_t seed = 0;
  double node_failure_probability = 0;
  std::uint32_t total_nodes = 0;
  std::vector<PlanIsp> isps;
  std::vector<PlanRange> ranges;
  std::vector<net::Ipv4Address> clean_public_resolvers;
  std::vector<std::string> strings{std::string()};  // id 0 = ""
  std::unordered_map<std::uint32_t, NodeOverlay> overlays;
  std::vector<std::shared_ptr<middlebox::DnsInterceptor>> dns_shared;
  std::vector<std::shared_ptr<middlebox::HttpInterceptor>> http_shared;
  std::vector<middlebox::HtmlInjector::Config> injector_configs;
  std::vector<middlebox::CertReplacer::Config> tls_configs;
  std::vector<std::shared_ptr<smtp::SmtpInterceptor>> smtp_shared;
  struct Transcoder {
    double fraction = 1.0;
    std::vector<std::shared_ptr<middlebox::ImageTranscoder>> per_quality;
  };
  std::vector<Transcoder> transcoders;

 private:
  struct CountryRun {
    std::uint32_t range = 0;
    std::size_t nodes_before = 0;  // in this country, before this run
  };
  std::map<net::CountryCode, std::vector<CountryRun>> country_runs_;
  std::map<net::CountryCode, std::size_t> country_totals_;
  std::unordered_map<std::string, std::uint32_t> intern_index_;
};

}  // namespace tft::world
