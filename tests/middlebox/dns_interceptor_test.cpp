#include "tft/middlebox/dns_interceptor.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace tft::middlebox {
namespace {

class DnsInterceptorTest : public ::testing::Test {
 protected:
  DnsInterceptorTest() {
    context_.clock = &clock_;
    context_.rng = &rng_;
  }

  dns::Message query(const char* name) {
    return dns::Message::query(1, *dns::DnsName::parse(name));
  }

  sim::EventQueue clock_;
  util::Rng rng_{5};
  FetchContext context_;
};

TEST_F(DnsInterceptorTest, RewriterTurnsNxdomainIntoA) {
  NxdomainRewriter rewriter({"dt-path-box", net::Ipv4Address(198, 51, 100, 80), 1.0, 60});
  const auto q = query("typo.example.com");
  const auto nxdomain = dns::Message::response_to(q, dns::Rcode::kNxDomain);
  const auto rewritten = rewriter.on_response(q, nxdomain, context_);
  ASSERT_TRUE(rewritten.has_value());
  EXPECT_EQ(rewritten->flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(rewritten->first_a()->to_string(), "198.51.100.80");
  EXPECT_EQ(rewritten->answers.front().ttl, 60u);
}

TEST_F(DnsInterceptorTest, RewriterIgnoresSuccessfulAnswers) {
  NxdomainRewriter rewriter({"box", net::Ipv4Address(1, 2, 3, 4), 1.0, 60});
  const auto q = query("real.example.com");
  auto answer = dns::Message::response_to(q, dns::Rcode::kNoError);
  answer.answers.push_back(
      dns::ResourceRecord::a(q.questions[0].name, net::Ipv4Address(9, 9, 9, 9)));
  EXPECT_FALSE(rewriter.on_response(q, answer, context_).has_value());
  // SERVFAIL is not NXDOMAIN either.
  const auto servfail = dns::Message::response_to(q, dns::Rcode::kServFail);
  EXPECT_FALSE(rewriter.on_response(q, servfail, context_).has_value());
}

TEST_F(DnsInterceptorTest, RewriterProbabilityZero) {
  NxdomainRewriter rewriter({"box", net::Ipv4Address(1, 2, 3, 4), 0.0, 60});
  const auto q = query("typo.example.com");
  const auto nxdomain = dns::Message::response_to(q, dns::Rcode::kNxDomain);
  EXPECT_FALSE(rewriter.on_response(q, nxdomain, context_).has_value());
}

TEST_F(DnsInterceptorTest, TransparentProxyRedirectsResolver) {
  const net::Ipv4Address isp_resolver(10, 0, 0, 53);
  TransparentDnsProxy proxy("isp-box", isp_resolver);
  EXPECT_EQ(proxy.redirect_resolver(net::Ipv4Address(8, 8, 8, 8)), isp_resolver);
}

TEST_F(DnsInterceptorTest, EffectiveResolverLastRedirectWins) {
  DnsInterceptorList chain;
  chain.push_back(std::make_shared<TransparentDnsProxy>("a", net::Ipv4Address(10, 0, 0, 1)));
  chain.push_back(std::make_shared<TransparentDnsProxy>("b", net::Ipv4Address(10, 0, 0, 2)));
  EXPECT_EQ(effective_resolver(chain, net::Ipv4Address(8, 8, 8, 8)),
            net::Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(effective_resolver({}, net::Ipv4Address(8, 8, 8, 8)),
            net::Ipv4Address(8, 8, 8, 8));
}

TEST_F(DnsInterceptorTest, InterceptedResponseFirstRewriteWins) {
  DnsInterceptorList chain;
  chain.push_back(std::make_shared<NxdomainRewriter>(
      NxdomainRewriter::Config{"first", net::Ipv4Address(1, 1, 1, 1), 1.0, 60}));
  chain.push_back(std::make_shared<NxdomainRewriter>(
      NxdomainRewriter::Config{"second", net::Ipv4Address(2, 2, 2, 2), 1.0, 60}));
  const auto q = query("typo.example.com");
  const auto result = intercepted_response(
      chain, q, dns::Message::response_to(q, dns::Rcode::kNxDomain), context_);
  EXPECT_EQ(result.first_a()->to_string(), "1.1.1.1");
}

TEST_F(DnsInterceptorTest, InterceptedResponsePassThrough) {
  const auto q = query("x.example.com");
  const auto nxdomain = dns::Message::response_to(q, dns::Rcode::kNxDomain);
  const auto result = intercepted_response({}, q, nxdomain, context_);
  EXPECT_TRUE(result.is_nxdomain());
}

}  // namespace
}  // namespace tft::middlebox
