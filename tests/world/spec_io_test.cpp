#include "tft/world/spec_io.hpp"

#include <gtest/gtest.h>

#include "tft/util/rng.hpp"
#include "tft/world/world.hpp"

namespace tft::world {
namespace {

TEST(SpecIoTest, PaperSpecRoundTrips) {
  const WorldSpec original = paper_spec();
  const std::string json = spec_to_json(original);
  const auto parsed = spec_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(*parsed == original);
}

TEST(SpecIoTest, MiniSpecRoundTrips) {
  const WorldSpec original = mini_spec();
  const auto parsed = spec_from_json(spec_to_json(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(*parsed == original);
}

TEST(SpecIoTest, MissingFieldsTakeDefaults) {
  const auto parsed = spec_from_json(
      R"({"countries":[{"code":"US","total_nodes":100}]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed->countries.size(), 1u);
  EXPECT_EQ(parsed->countries[0].code, "US");
  EXPECT_EQ(parsed->countries[0].isp_count, CountrySpec{}.isp_count);
  EXPECT_EQ(parsed->google_anycast_instances, WorldSpec{}.google_anycast_instances);
  EXPECT_TRUE(parsed->monitors.empty());
}

TEST(SpecIoTest, UnknownFieldsRejected) {
  EXPECT_FALSE(spec_from_json(R"({"countires":[]})").ok());  // typo
  EXPECT_FALSE(
      spec_from_json(R"({"countries":[{"code":"US","total_noodles":5}]})").ok());
  EXPECT_FALSE(
      spec_from_json(R"({"monitors":[{"entity":"X","knd":"vpn"}]})").ok());
}

TEST(SpecIoTest, BadEnumValuesRejected) {
  EXPECT_FALSE(spec_from_json(
                   R"({"monitors":[{"entity":"X","kind":"telepathy"}]})")
                   .ok());
  EXPECT_FALSE(spec_from_json(
                   R"({"cert_replacers":[{"product":"X","kind":"benign"}]})")
                   .ok());
  EXPECT_FALSE(spec_from_json(
                   R"({"smtp_interceptors":[{"name":"X","kind":"eat_mail"}]})")
                   .ok());
  EXPECT_FALSE(
      spec_from_json(R"({"named_isps":[{"name":"X","kind":"circus"}]})").ok());
}

TEST(SpecIoTest, NotAnObjectRejected) {
  EXPECT_FALSE(spec_from_json("[]").ok());
  EXPECT_FALSE(spec_from_json("42").ok());
  EXPECT_FALSE(spec_from_json("not json at all").ok());
}

TEST(SpecIoTest, CountryWithoutCodeRejected) {
  EXPECT_FALSE(spec_from_json(R"({"countries":[{"total_nodes":5}]})").ok());
}

TEST(SpecIoTest, LoadedScenarioBuildsAWorld) {
  // End-to-end: a hand-written scenario file builds and probes.
  const char* scenario = R"({
    "countries": [
      {"code":"NL","total_nodes":200,"extra_hijacked_nodes":20,
       "isp_count":2,"ases_per_isp":2}
    ],
    "clean_public_resolvers": 4,
    "scattered_google_hijack_nodes": 0,
    "adware_install_boost": 1.0,
    "blockpage_nodes": 0, "js_error_nodes": 0, "css_error_nodes": 0,
    "tail_monitor_groups": 0, "tail_monitor_nodes": 0,
    "https": {"popular_sites_per_country": 3, "countries_with_rankings": 1,
              "universities": ["example.edu"]}
  })";
  const auto spec = spec_from_json(scenario);
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  const auto world = build_world(*spec, 1.0, 5);
  EXPECT_GT(world->luminati->node_count(), 150u);
  const auto hijacked = world->truth.count([](const NodeTruth& truth) {
    return truth.dns_hijack != DnsHijackSource::kNone;
  });
  EXPECT_GT(hijacked, 5u);
}

TEST(SpecIoTest, MutatedDocumentsNeverCrash) {
  // Property: corrupting a valid scenario byte-wise yields clean errors (or
  // a still-valid document), never a crash.
  util::Rng rng(0x51C);
  const std::string valid = spec_to_json(mini_spec());
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string mutated = valid;
    const std::size_t flips = 1 + rng.index(6);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.index(mutated.size())] =
          static_cast<char>(32 + rng.index(95));  // printable ASCII
    }
    (void)spec_from_json(mutated);
  }
}

TEST(SpecIoTest, SnippetsWithSpecialCharactersSurvive) {
  WorldSpec spec = mini_spec();
  spec.adware[0].snippet = "<script>\"quoted\"\n\ttabbed\\slashed</script>";
  const auto parsed = spec_from_json(spec_to_json(spec));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->adware[0].snippet, spec.adware[0].snippet);
}

}  // namespace
}  // namespace tft::world
