#include "tft/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tft::util {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(42);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double ratio = static_cast<double>(hits) / trials;
  EXPECT_NEAR(ratio, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double total = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) total += rng.exponential(5.0);
  EXPECT_NEAR(total / trials, 5.0, 0.1);
}

TEST(RngTest, LogUniformStaysInRange) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform(12.0, 120.0);
    EXPECT_GE(v, 12.0);
    EXPECT_LE(v, 120.0 * (1 + 1e-9));
  }
}

TEST(RngTest, WeightedIndexFavorsHeavyWeight) {
  Rng rng(31);
  const std::vector<double> weights{0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(99), b(99);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

// Count how many values the two generators emit in common over `draws`
// draws each. For healthy independent 64-bit streams the expectation is
// draws^2 / 2^64 — essentially zero even at a million draws.
std::size_t overlap_count(Rng& a, Rng& b, std::size_t draws) {
  std::vector<std::uint64_t> from_a(draws), from_b(draws);
  for (auto& v : from_a) v = a.next_u64();
  for (auto& v : from_b) v = b.next_u64();
  std::sort(from_a.begin(), from_a.end());
  std::sort(from_b.begin(), from_b.end());
  std::vector<std::uint64_t> common;
  std::set_intersection(from_a.begin(), from_a.end(), from_b.begin(),
                        from_b.end(), std::back_inserter(common));
  return common.size();
}

TEST(RngTest, ForkDoesNotOverlapParentOverMillionDraws) {
  // Regression for the fork() derivation audit: a fork seeded from raw
  // parent state (instead of a fresh draw) can land on an overlapping or
  // correlated trajectory. A healthy fork shares no values with its
  // parent's subsequent output.
  Rng parent(99);
  Rng child = parent.fork();
  EXPECT_LE(overlap_count(parent, child, 1u << 20), 2u);
}

TEST(RngTest, SiblingForksDoNotOverlapOverMillionDraws) {
  Rng parent(1234);
  Rng first = parent.fork();
  Rng second = parent.fork();
  EXPECT_LE(overlap_count(first, second, 1u << 20), 2u);
}

TEST(RngTest, SeedZeroIsNotDegenerate) {
  // splitmix64 seeding must turn the all-zero seed into full-entropy
  // state: no constant output, no zero-heavy stream.
  Rng rng(0);
  std::set<std::uint64_t> seen;
  std::size_t zeros = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_u64();
    seen.insert(v);
    if (v == 0) ++zeros;
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_LE(zeros, 1u);
}

TEST(RngTest, ReseedZeroMatchesFreshSeedZeroAndAvoidsNearbySeeds) {
  Rng reseeded(77);
  reseeded.next_u64();
  reseeded.reseed(0);
  Rng fresh(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(reseeded.next_u64(), fresh.next_u64());

  Rng zero(0), one(1);
  EXPECT_LE(overlap_count(zero, one, 1u << 20), 2u);
}

TEST(RngTest, WeightedIndexAllZeroDegradesToUniform) {
  Rng rng(13);
  const std::vector<double> weights{0.0, 0.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    const auto pick = rng.weighted_index(weights);
    ASSERT_LT(pick, 3u);
    ++counts[pick];
  }
  for (int count : counts) EXPECT_GT(count, 800);
}

TEST(RngTest, WeightedIndexSingleElement) {
  Rng rng(14);
  EXPECT_EQ(rng.weighted_index({5.0}), 0u);
  EXPECT_EQ(rng.weighted_index({0.0}), 0u);
}

TEST(RngTest, WeightedIndexTreatsNaNAndNegativeAsZero) {
  Rng rng(15);
  const std::vector<double> weights{std::nan(""), -3.0, 2.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.weighted_index(weights), 2u);
}

TEST(RngTest, WeightedIndexAllNonPositiveDegradesToUniform) {
  Rng rng(16);
  const std::vector<double> weights{std::nan(""), -1.0, -2.0, std::nan("")};
  std::set<std::size_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto pick = rng.weighted_index(weights);
    ASSERT_LT(pick, 4u);
    seen.insert(pick);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformHasNoModuloBiasAtLargeBounds) {
  // bound = 3 * 2^62: plain `next_u64() % bound` would land 62.5% of draws
  // in the bottom half of the range (the low 2^62 values have two
  // preimages). Rejection sampling must keep the halves balanced.
  const std::uint64_t bound = 0xC000000000000000ull;
  Rng rng(21);
  std::size_t low = 0;
  const std::size_t trials = 200000;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto v = rng.uniform(bound);
    ASSERT_LT(v, bound);
    if (v < bound / 2) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / trials, 0.5, 0.01);
}

TEST(RngTest, UniformSmallBoundFrequenciesBalanced) {
  Rng rng(22);
  std::size_t counts[3] = {0, 0, 0};
  const std::size_t trials = 300000;
  for (std::size_t i = 0; i < trials; ++i) ++counts[rng.uniform(3)];
  for (std::size_t count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 1.0 / 3.0, 0.01);
  }
}

}  // namespace
}  // namespace tft::util
