#include "tft/tls/certificate.hpp"

#include "tft/util/hash.hpp"
#include "tft/util/strings.hpp"

namespace tft::tls {

std::string DistinguishedName::to_string() const {
  std::string out = "CN=" + common_name;
  if (!organization.empty()) out += ", O=" + organization;
  if (!country.empty()) out += ", C=" + country;
  return out;
}

std::uint64_t Certificate::fingerprint() const {
  std::uint64_t hash = util::fnv1a64(subject.to_string());
  hash = util::hash_combine(hash, util::fnv1a64(issuer.to_string()));
  hash = util::hash_combine(hash, serial);
  hash = util::hash_combine(hash, static_cast<std::uint64_t>(not_before.micros));
  hash = util::hash_combine(hash, static_cast<std::uint64_t>(not_after.micros));
  for (const auto& san : subject_alt_names) {
    hash = util::hash_combine(hash, util::fnv1a64(san));
  }
  hash = util::hash_combine(hash, public_key);
  hash = util::hash_combine(hash, signed_by);
  hash = util::hash_combine(hash, is_ca ? 1 : 0);
  return hash;
}

bool wildcard_matches(std::string_view pattern, std::string_view host) {
  if (!pattern.starts_with("*.")) return util::iequals(pattern, host);
  // The wildcard covers exactly one leading label.
  const auto dot = host.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  return util::iequals(pattern.substr(2), host.substr(dot + 1));
}

bool Certificate::matches_host(std::string_view host) const {
  // Per RFC 6125, SANs take precedence; fall back to CN when none present.
  if (!subject_alt_names.empty()) {
    for (const auto& san : subject_alt_names) {
      if (wildcard_matches(san, host)) return true;
    }
    return false;
  }
  return wildcard_matches(subject.common_name, host);
}

}  // namespace tft::tls
