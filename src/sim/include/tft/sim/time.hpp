// Simulated time. The whole library runs on a discrete-event clock so that
// delay-sensitive behaviour (session expiry, monitoring re-fetch delays,
// certificate validity) is reproducible and fast.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace tft::sim {

/// A duration in simulated microseconds.
struct Duration {
  std::int64_t micros = 0;

  static constexpr Duration microseconds(std::int64_t n) { return Duration{n}; }
  static constexpr Duration milliseconds(std::int64_t n) { return Duration{n * 1000}; }
  static constexpr Duration seconds(double n) {
    return Duration{static_cast<std::int64_t>(n * 1'000'000.0)};
  }
  static constexpr Duration minutes(double n) { return seconds(n * 60.0); }
  static constexpr Duration hours(double n) { return seconds(n * 3600.0); }

  constexpr double to_seconds() const { return static_cast<double>(micros) / 1'000'000.0; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration other) const { return Duration{micros + other.micros}; }
  constexpr Duration operator-(Duration other) const { return Duration{micros - other.micros}; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(micros) * k)};
  }
};

/// An instant on the simulated timeline (microseconds since sim epoch).
struct Instant {
  std::int64_t micros = 0;

  static constexpr Instant epoch() { return Instant{0}; }

  constexpr auto operator<=>(const Instant&) const = default;
  constexpr Instant operator+(Duration d) const { return Instant{micros + d.micros}; }
  constexpr Instant operator-(Duration d) const { return Instant{micros - d.micros}; }
  constexpr Duration operator-(Instant other) const { return Duration{micros - other.micros}; }
};

/// "12.345s" style rendering for logs and reports.
std::string to_string(Duration d);
std::string to_string(Instant t);

}  // namespace tft::sim
