// Deterministic parallelism primitives.
//
// The repo's determinism contract is "worker count never changes results":
// any computation distributed over threads must produce byte-identical
// output for --jobs 1 and --jobs N. Two pieces enforce that here:
//
//  * ThreadPool — a plain fixed-size worker pool (unordered completion;
//    callers that need ordering merge results themselves, by task index).
//  * parallel_for_shards — splits an index range [0, n) into k *contiguous*
//    shards where k is derived from n alone (never from the worker count),
//    runs each shard independently, and merges per-shard results in shard
//    order. Shards that need randomness derive an independent RNG stream
//    from shard_seed(seed, shard_index) = splitmix64(seed ^ shard_index),
//    so no shard ever observes another shard's draws.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "tft/util/function.hpp"

namespace tft::util {

/// Fixed-size worker pool. Tasks run in submission order when there is one
/// worker; completion order is otherwise unspecified, so deterministic
/// callers must combine results by task identity, not completion time.
class ThreadPool {
 public:
  /// `workers` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueue a task; the future resolves when it has run (or rethrows what
  /// the task threw).
  template <typename F>
  std::future<std::invoke_result_t<F&>> submit(F fn) {
    using R = std::invoke_result_t<F&>;
    std::packaged_task<R()> task(std::move(fn));
    std::future<R> result = task.get_future();
    enqueue([task = std::move(task)]() mutable { task(); });
    return result;
  }

  /// Default worker count for `jobs = 0` configurations.
  static std::size_t default_workers();

 private:
  void enqueue(UniqueFunction<void()> task);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<UniqueFunction<void()>> queue_;  // FIFO via head index
  std::size_t queue_head_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Process-global parallelism telemetry, accumulated by every ThreadPool
/// and run_shards call. Two classes of fields, matching the repo's
/// determinism contract:
///  * shard_batches / shard_tasks depend only on input sizes and shard
///    geometry — identical for every --jobs value (deterministic);
///  * pool_tasks, queue_high_water, and busy_micros depend on scheduling
///    and wall time — report them under a `timing` section only.
/// Readers take snapshots and diff them around a region of interest.
struct PoolTelemetry {
  std::atomic<std::uint64_t> shard_batches{0};     // run_shards invocations
  std::atomic<std::uint64_t> shard_tasks{0};       // shards executed
  std::atomic<std::uint64_t> pool_tasks{0};        // ThreadPool tasks run
  std::atomic<std::uint64_t> queue_high_water{0};  // max pending pool tasks
  std::atomic<std::uint64_t> busy_micros{0};       // wall time inside tasks/shards
};

/// The process-global telemetry sink.
PoolTelemetry& pool_telemetry();

/// Plain-value copy of the telemetry counters at one moment.
struct PoolTelemetrySnapshot {
  std::uint64_t shard_batches = 0;
  std::uint64_t shard_tasks = 0;
  std::uint64_t pool_tasks = 0;
  std::uint64_t queue_high_water = 0;
  std::uint64_t busy_micros = 0;
};
PoolTelemetrySnapshot pool_telemetry_snapshot();

/// Independent per-shard RNG stream seed: splitmix64(seed ^ shard_index).
std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t shard_index);

/// Deterministic shard count for n items: one shard per `grain` items,
/// capped so tiny inputs stay single-shard and huge inputs bounded. Depends
/// only on n and grain — never on the worker count.
std::size_t shard_count(std::size_t n, std::size_t grain = 256,
                        std::size_t max_shards = 64);

namespace detail {
/// Run fn(shard) for shard in [0, shards) on min(jobs, shards) transient
/// worker threads pulling shard indices from a shared counter. jobs <= 1
/// runs inline on the calling thread. Exceptions propagate (first shard
/// index order).
void run_shards(std::size_t shards, std::size_t jobs,
                const UniqueFunction<void(std::size_t)>& fn);
}  // namespace detail

/// Partition [0, n) into `shards` contiguous ranges and run
/// `fn(shard_index, begin, end)` for each, using up to `jobs` threads.
/// Writes fn performs must stay within its own range/slot. The schedule a
/// shard lands on never affects results: ranges depend only on (n, shards).
template <typename Fn>
void parallel_for_shards(std::size_t n, std::size_t shards, std::size_t jobs,
                         Fn&& fn) {
  if (n == 0 || shards == 0) return;
  if (shards > n) shards = n;
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get +1 item
  detail::run_shards(shards, jobs, [&](std::size_t shard) {
    const std::size_t begin =
        shard * base + (shard < extra ? shard : extra);
    const std::size_t end = begin + base + (shard < extra ? 1 : 0);
    fn(shard, begin, end);
  });
}

/// As above, but each shard returns a std::vector<T>; the per-shard vectors
/// are concatenated in shard order, so the merged output is identical for
/// every worker count.
template <typename T, typename Fn>
std::vector<T> parallel_map_shards(std::size_t n, std::size_t shards,
                                   std::size_t jobs, Fn&& fn) {
  if (n == 0 || shards == 0) return {};
  if (shards > n) shards = n;
  std::vector<std::vector<T>> partial(shards);
  parallel_for_shards(n, shards, jobs,
                      [&](std::size_t shard, std::size_t begin, std::size_t end) {
                        partial[shard] = fn(shard, begin, end);
                      });
  std::vector<T> merged;
  std::size_t total = 0;
  for (const auto& part : partial) total += part.size();
  merged.reserve(total);
  for (auto& part : partial) {
    for (auto& item : part) merged.push_back(std::move(item));
  }
  return merged;
}

}  // namespace tft::util
