#include "tft/net/topology.hpp"

#include <gtest/gtest.h>

namespace tft::net {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telekom_ = db_.add_organization("Deutsche Telekom AG", "DE", OrgKind::kBroadbandIsp);
    google_ = db_.add_organization("Google", "US", OrgKind::kPublicDnsOperator);
    db_.add_as(3320, telekom_);
    db_.add_as(15169, google_);
    db_.announce(*Ipv4Prefix::parse("91.0.0.0/10"), 3320);
    db_.announce(*Ipv4Prefix::parse("8.8.8.0/24"), 15169);
  }

  AsOrgDb db_;
  OrgId telekom_ = 0;
  OrgId google_ = 0;
};

TEST_F(TopologyTest, OriginAsLookup) {
  EXPECT_EQ(db_.origin_as(Ipv4Address(91, 20, 30, 40)), 3320u);
  EXPECT_EQ(db_.origin_as(Ipv4Address(8, 8, 8, 8)), 15169u);
  EXPECT_FALSE(db_.origin_as(Ipv4Address(1, 2, 3, 4)).has_value());
}

TEST_F(TopologyTest, OrgAndCountry) {
  EXPECT_EQ(db_.org_of(3320), telekom_);
  EXPECT_EQ(db_.country_of(3320), "DE");
  EXPECT_EQ(db_.country_of(15169), "US");
  EXPECT_FALSE(db_.org_of(65000).has_value());
  EXPECT_FALSE(db_.country_of(65000).has_value());
}

TEST_F(TopologyTest, OrganizationOfAddress) {
  const Organization* org = db_.organization_of(Ipv4Address(91, 1, 1, 1));
  ASSERT_NE(org, nullptr);
  EXPECT_EQ(org->name, "Deutsche Telekom AG");
  EXPECT_EQ(org->kind, OrgKind::kBroadbandIsp);
  EXPECT_EQ(db_.organization_of(Ipv4Address(203, 0, 113, 1)), nullptr);
}

TEST_F(TopologyTest, SameOrganizationAcrossAses) {
  // One ISP operating multiple ASes, as CAIDA's dataset models.
  db_.add_as(3321, telekom_);
  db_.announce(*Ipv4Prefix::parse("217.0.0.0/13"), 3321);
  EXPECT_TRUE(db_.same_organization(Ipv4Address(91, 1, 1, 1), Ipv4Address(217, 1, 1, 1)));
  EXPECT_FALSE(db_.same_organization(Ipv4Address(91, 1, 1, 1), Ipv4Address(8, 8, 8, 8)));
  EXPECT_FALSE(db_.same_organization(Ipv4Address(91, 1, 1, 1), Ipv4Address(1, 2, 3, 4)));
}

TEST_F(TopologyTest, AllAsnsSorted) {
  db_.add_as(100, telekom_);
  const auto asns = db_.all_asns();
  ASSERT_EQ(asns.size(), 3u);
  EXPECT_EQ(asns[0], 100u);
  EXPECT_EQ(asns[1], 3320u);
  EXPECT_EQ(asns[2], 15169u);
}

TEST_F(TopologyTest, Counts) {
  EXPECT_EQ(db_.organization_count(), 2u);
  EXPECT_EQ(db_.as_count(), 2u);
  EXPECT_EQ(db_.announced_prefix_count(), 2u);
}

TEST(OrgKindTest, Names) {
  EXPECT_EQ(to_string(OrgKind::kMobileIsp), "mobile_isp");
  EXPECT_EQ(to_string(OrgKind::kSecurityVendor), "security_vendor");
}

TEST(TopologyEdgeTest, OrganizationOutOfRange) {
  AsOrgDb db;
  EXPECT_EQ(db.organization(0), nullptr);
  EXPECT_EQ(db.organization(99), nullptr);
}

}  // namespace
}  // namespace tft::net
