#include "tft/util/stream_rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tft::util {
namespace {

TEST(StreamRngTest, DeterministicForKey) {
  StreamRng a(42, 7, "country"), b(42, 7, "country");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(StreamRngTest, StringAndKeyConstructorsAgree) {
  StreamRng by_parts(42, 7, "country");
  StreamRng by_key(StreamKey{42, 7, purpose_tag("country")});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(by_parts.next_u64(), by_key.next_u64());
}

TEST(StreamRngTest, KeyComponentsAllMatter) {
  StreamRng base(42, 7, "country");
  StreamRng other_seed(43, 7, "country");
  StreamRng other_entity(42, 8, "country");
  StreamRng other_purpose(42, 7, "churn");
  int seed_same = 0, entity_same = 0, purpose_same = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = base.next_u64();
    if (v == other_seed.next_u64()) ++seed_same;
    if (v == other_entity.next_u64()) ++entity_same;
    if (v == other_purpose.next_u64()) ++purpose_same;
  }
  EXPECT_LT(seed_same, 3);
  EXPECT_LT(entity_same, 3);
  EXPECT_LT(purpose_same, 3);
}

TEST(StreamRngTest, SeekJumpsToAbsolutePosition) {
  StreamRng sequential(9, 1, "sample");
  std::vector<std::uint64_t> draws;
  for (int i = 0; i < 20; ++i) draws.push_back(sequential.next_u64());

  StreamRng seeker(9, 1, "sample");
  seeker.seek(13);
  EXPECT_EQ(seeker.next_u64(), draws[13]);
  EXPECT_EQ(seeker.counter(), 14u);
  seeker.seek(0);
  EXPECT_EQ(seeker.next_u64(), draws[0]);
}

TEST(StreamRngTest, CounterConstructorResumesMidStream) {
  StreamRng full(5, 2, "country");
  for (int i = 0; i < 8; ++i) full.next_u64();

  StreamRng resumed(full.key(), full.counter());
  StreamRng reference(5, 2, "country");
  reference.seek(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(resumed.next_u64(), reference.next_u64());
}

TEST(StreamRngTest, InterleavingNeverShiftsAnotherStream) {
  // The composability contract in miniature: stream A's draws are the same
  // whether or not stream B draws in between.
  StreamRng alone(77, 1, "a");
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(alone.next_u64());

  StreamRng interleaved(77, 1, "a");
  StreamRng noise(77, 2, "b");
  for (int i = 0; i < 50; ++i) {
    for (int j = 0; j <= i % 3; ++j) noise.next_u64();
    EXPECT_EQ(interleaved.next_u64(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(StreamRngTest, StreamSeedMatchesKeyMixed) {
  EXPECT_EQ(stream_seed(42, 7, "node"),
            (StreamKey{42, 7, purpose_tag("node")}.mixed()));
  EXPECT_NE(stream_seed(42, 7, "node"), stream_seed(42, 7, "churn"));
}

TEST(StreamCheckpointTest, JsonRoundTripsExtremeValues) {
  StreamCheckpoint checkpoint;
  checkpoint.next_round = 3;
  checkpoint.streams.push_back(
      {"round0/country", StreamKey{0, 0, 0}, 0});
  checkpoint.streams.push_back(
      {"round1/country",
       StreamKey{0xFFFFFFFFFFFFFFFFull, 0x8000000000000000ull, 0xDEADBEEFull},
       0xFFFFFFFFFFFFFFFFull});

  const std::string json = stream_checkpoint_json(checkpoint);
  const auto parsed = parse_stream_checkpoint(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(*parsed, checkpoint);
}

TEST(StreamCheckpointTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(parse_stream_checkpoint("not json").ok());
  EXPECT_FALSE(parse_stream_checkpoint("[]").ok());
  EXPECT_FALSE(parse_stream_checkpoint("{}").ok());
  // Foreign format tag.
  EXPECT_FALSE(parse_stream_checkpoint(
                   R"({"format":"something-else","version":1,)"
                   R"("next_round":"0x0","streams":[]})")
                   .ok());
  // Unsupported version.
  EXPECT_FALSE(parse_stream_checkpoint(
                   R"({"format":"tft-stream-checkpoint","version":2,)"
                   R"("next_round":"0x0","streams":[]})")
                   .ok());
  // next_round as a JSON number (doubles cannot carry uint64 exactly).
  EXPECT_FALSE(parse_stream_checkpoint(
                   R"({"format":"tft-stream-checkpoint","version":1,)"
                   R"("next_round":3,"streams":[]})")
                   .ok());
  // Malformed hex digits.
  EXPECT_FALSE(parse_stream_checkpoint(
                   R"({"format":"tft-stream-checkpoint","version":1,)"
                   R"("next_round":"0xZZ","streams":[]})")
                   .ok());
  // Stream entry missing its label.
  EXPECT_FALSE(parse_stream_checkpoint(
                   R"({"format":"tft-stream-checkpoint","version":1,)"
                   R"("next_round":"0x1","streams":[{"study_seed":"0x0",)"
                   R"("entity":"0x0","purpose":"0x0","counter":"0x0"}]})")
                   .ok());
}

TEST(StreamCheckpointTest, ParseAcceptsMinimalValidDocument) {
  const auto parsed = parse_stream_checkpoint(
      R"({"format":"tft-stream-checkpoint","version":1,)"
      R"("next_round":"0x2","streams":[)"
      R"({"label":"round0/country","study_seed":"0x7f7","entity":"0x0",)"
      R"("purpose":"0xabc","counter":"0x1a"},)"
      R"({"label":"round1/country","study_seed":"0x7f7","entity":"0x0",)"
      R"("purpose":"0xabc","counter":"0x2b"}]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->next_round, 2u);
  ASSERT_EQ(parsed->streams.size(), 2u);
  EXPECT_EQ(parsed->streams[0].label, "round0/country");
  EXPECT_EQ(parsed->streams[0].key.study_seed, 0x7F7u);
  EXPECT_EQ(parsed->streams[1].counter, 0x2Bu);
}

}  // namespace
}  // namespace tft::util
