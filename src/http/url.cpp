#include "tft/http/url.hpp"

#include <charconv>

#include "tft/util/strings.hpp"

namespace tft::http {

using util::ErrorCode;
using util::make_error;
using util::Result;

Result<Url> Url::parse(std::string_view text) {
  Url url;

  const auto scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos) {
    return make_error(ErrorCode::kParseError, "missing scheme in URL");
  }
  url.scheme = util::to_lower(text.substr(0, scheme_end));
  if (url.scheme == "http") {
    url.port = 80;
  } else if (url.scheme == "https") {
    url.port = 443;
  } else {
    return make_error(ErrorCode::kParseError, "unsupported scheme: " + url.scheme);
  }
  text.remove_prefix(scheme_end + 3);

  // Split authority from path/query.
  const auto path_start = text.find_first_of("/?");
  std::string_view authority =
      path_start == std::string_view::npos ? text : text.substr(0, path_start);
  std::string_view rest =
      path_start == std::string_view::npos ? std::string_view{} : text.substr(path_start);

  if (authority.empty()) {
    return make_error(ErrorCode::kParseError, "empty host in URL");
  }
  const auto colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const auto port_text = authority.substr(colon + 1);
    std::uint32_t port = 0;
    const auto [ptr, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() || port == 0 ||
        port > 65535) {
      return make_error(ErrorCode::kParseError, "bad port in URL");
    }
    url.port = static_cast<std::uint16_t>(port);
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) {
    return make_error(ErrorCode::kParseError, "empty host in URL");
  }
  url.host = util::to_lower(authority);

  if (rest.empty()) {
    url.path = "/";
  } else if (rest.front() == '?') {
    url.path = "/";
    url.query = std::string(rest.substr(1));
  } else {
    const auto question = rest.find('?');
    if (question == std::string_view::npos) {
      url.path = std::string(rest);
    } else {
      url.path = std::string(rest.substr(0, question));
      url.query = std::string(rest.substr(question + 1));
    }
  }
  return url;
}

std::string Url::to_string() const {
  std::string out = scheme + "://" + host;
  const bool default_port =
      (scheme == "http" && port == 80) || (scheme == "https" && port == 443);
  if (!default_port) {
    out += ':';
    out += std::to_string(port);
  }
  out += request_target();
  return out;
}

std::string Url::host_header() const {
  const bool default_port =
      (scheme == "http" && port == 80) || (scheme == "https" && port == 443);
  if (default_port) return host;
  return host + ':' + std::to_string(port);
}

std::string Url::request_target() const {
  std::string out = path;
  if (!query.empty()) {
    out += '?';
    out += query;
  }
  return out;
}

}  // namespace tft::http
