#include "tft/stats/cdf.hpp"

#include <gtest/gtest.h>

#include "tft/util/rng.hpp"

namespace tft::stats {
namespace {

TEST(EmpiricalCdfTest, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 0.0);
}

TEST(EmpiricalCdfTest, AtComputesFraction) {
  EmpiricalCdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdfTest, AddKeepsOrderIrrelevant) {
  EmpiricalCdf cdf;
  cdf.add(3);
  cdf.add(1);
  cdf.add(2);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(EmpiricalCdfTest, PercentileInterpolates) {
  EmpiricalCdf cdf({0, 10});
  EXPECT_DOUBLE_EQ(cdf.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(25), 2.5);
}

TEST(EmpiricalCdfTest, SingleSample) {
  EmpiricalCdf cdf({7});
  EXPECT_DOUBLE_EQ(cdf.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(99), 7.0);
}

TEST(EmpiricalCdfTest, LogSpacedCurveMonotone) {
  util::Rng rng(5);
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.log_uniform(12, 12500));
  const auto curve = cdf.log_spaced_curve(1, 20000, 50);
  ASSERT_EQ(curve.size(), 50u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_NEAR(curve.back().first, 20000.0, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);  // CDF is monotone
    EXPECT_GT(curve[i].first, curve[i - 1].first);    // log-spaced x grows
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdfTest, AsciiCurveShape) {
  EmpiricalCdf cdf({100, 100, 100, 100});
  const std::string curve = cdf.ascii_curve(1, 10000, 20);
  EXPECT_EQ(curve.size(), 20u);
  EXPECT_EQ(curve.front(), ' ');   // nothing below 1s
  EXPECT_EQ(curve.back(), '@');    // everything by 10000s
}

TEST(EmpiricalCdfTest, SortedSamplesAccessor) {
  EmpiricalCdf cdf({3, 1, 2});
  const auto& sorted = cdf.sorted_samples();
  EXPECT_EQ(sorted, (std::vector<double>{1, 2, 3}));
}

TEST(EmpiricalCdfTest, TrendMicroStepShape) {
  // Two log-uniform components — the CDF must show the y=0.5 plateau
  // between 120s and 200s that Figure 5 shows for TrendMicro.
  util::Rng rng(9);
  EmpiricalCdf cdf;
  for (int i = 0; i < 2000; ++i) {
    cdf.add(rng.log_uniform(12, 120));
    cdf.add(rng.log_uniform(200, 12500));
  }
  EXPECT_NEAR(cdf.at(120.0), 0.5, 0.02);
  EXPECT_NEAR(cdf.at(199.0), 0.5, 0.02);
  EXPECT_LT(cdf.at(60.0), 0.45);
  EXPECT_GT(cdf.at(1000.0), 0.6);
}

}  // namespace
}  // namespace tft::stats
