#include "tft/net/server/socket_channel.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "tft/net/server/proxy_server.hpp"

namespace tft::net::server {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

/// Blocking-mode poll(2) timeout. Generous: the server thread may be busy
/// running a whole measurement behind another connection.
constexpr int kBlockingTimeoutMs = 30'000;

/// Cooperative-mode stall guard: consecutive pump rounds that dispatched
/// nothing while our socket stayed blocked. Loopback delivery is immediate,
/// so sustained idleness means the exchange is wedged, not slow.
constexpr int kIdleRoundLimit = 10'000;

/// The metadata headers the server adds to every proxied response; the
/// client strips them after rebuilding the result, restoring the response
/// to what the in-process channel would have returned.
constexpr std::string_view kMetadataHeaders[] = {
    "X-TFT-Proxy-Status", "X-TFT-Zid",          "X-TFT-Exit-Ip",
    "X-TFT-Exit-Asn",     "X-TFT-Exit-Country", "X-TFT-Timeline",
};

Result<proxy::ProxyStatus> status_from_headers(const http::HeaderMap& headers) {
  const auto text = headers.get("X-TFT-Proxy-Status");
  if (!text) {
    return make_error(ErrorCode::kProtocolViolation,
                      "proxy response lacks X-TFT-Proxy-Status");
  }
  return proxy::parse_proxy_status(*text);
}

}  // namespace

SocketProxyChannel::SocketProxyChannel(std::uint16_t port, ProxyServer* pump)
    : port_(port), pump_(pump) {}

SocketProxyChannel::~SocketProxyChannel() { close_fetch_connection(); }

Result<int> SocketProxyChannel::connect_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port_);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    if (errno != EINPROGRESS) {
      const int saved = errno;
      ::close(fd);
      return make_error(ErrorCode::kConnectionRefused,
                        std::string("connect 127.0.0.1:") +
                            std::to_string(port_) + ": " + std::strerror(saved));
    }
    if (const auto ready = wait_for(fd, POLLOUT); !ready.ok()) {
      ::close(fd);
      return ready.error();
    }
    int error = 0;
    socklen_t length = sizeof(error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &length);
    if (error != 0) {
      ::close(fd);
      return make_error(ErrorCode::kConnectionRefused,
                        std::string("connect 127.0.0.1:") +
                            std::to_string(port_) + ": " +
                            std::strerror(error));
    }
  }
  return fd;
}

Result<void> SocketProxyChannel::wait_for(int fd, short events) {
  if (pump_ != nullptr) {
    for (int idle = 0; idle < kIdleRoundLimit;) {
      pollfd probe{fd, events, 0};
      if (::poll(&probe, 1, 0) > 0 &&
          (probe.revents & (events | POLLHUP | POLLERR)) != 0) {
        return {};
      }
      if (pump_->poll_once(0)) {
        idle = 0;
      } else {
        ++idle;
      }
    }
    return make_error(ErrorCode::kTimeout,
                      "loopback exchange made no progress");
  }
  pollfd probe{fd, events, 0};
  const int ready = ::poll(&probe, 1, kBlockingTimeoutMs);
  if (ready > 0) return {};
  if (ready == 0) {
    return make_error(ErrorCode::kTimeout, "proxy socket timed out");
  }
  return make_error(ErrorCode::kInternal,
                    std::string("poll: ") + std::strerror(errno));
}

Result<void> SocketProxyChannel::send_all(int fd, std::string_view bytes) {
  std::size_t sent_total = 0;
  while (sent_total < bytes.size()) {
    const ssize_t sent = ::send(fd, bytes.data() + sent_total,
                                bytes.size() - sent_total, MSG_NOSIGNAL);
    if (sent > 0) {
      sent_total += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (const auto ready = wait_for(fd, POLLOUT); !ready.ok()) return ready;
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return make_error(ErrorCode::kInternal,
                      std::string("send: ") + std::strerror(errno));
  }
  return {};
}

Result<std::string> SocketProxyChannel::read_message(
    int fd, http::MessageReader& reader) {
  for (;;) {
    if (auto message = reader.next_message()) return *std::move(message);
    char buffer[16384];
    const ssize_t received = ::recv(fd, buffer, sizeof(buffer), 0);
    if (received > 0) {
      if (const auto fed = reader.feed(
              std::string_view(buffer, static_cast<std::size_t>(received)));
          !fed.ok()) {
        return fed.error();
      }
      continue;
    }
    if (received == 0) {
      return make_error(ErrorCode::kConnectionRefused,
                        "proxy closed the connection mid-response");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (const auto ready = wait_for(fd, POLLIN); !ready.ok()) {
        return ready.error();
      }
      continue;
    }
    if (errno == EINTR) continue;
    return make_error(ErrorCode::kInternal,
                      std::string("recv: ") + std::strerror(errno));
  }
}

Result<std::string> SocketProxyChannel::read_frame(int fd, FrameReader& reader) {
  for (;;) {
    if (auto payload = reader.next_frame()) return *std::move(payload);
    char buffer[16384];
    const ssize_t received = ::recv(fd, buffer, sizeof(buffer), 0);
    if (received > 0) {
      if (const auto fed = reader.feed(
              std::string_view(buffer, static_cast<std::size_t>(received)));
          !fed.ok()) {
        return fed.error();
      }
      continue;
    }
    if (received == 0) {
      return make_error(ErrorCode::kConnectionRefused,
                        "proxy closed the tunnel mid-frame");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (const auto ready = wait_for(fd, POLLIN); !ready.ok()) {
        return ready.error();
      }
      continue;
    }
    if (errno == EINTR) continue;
    return make_error(ErrorCode::kInternal,
                      std::string("recv: ") + std::strerror(errno));
  }
}

Result<void> SocketProxyChannel::ensure_fetch_connection() {
  if (fetch_fd_ >= 0) return {};
  auto fd = connect_socket();
  if (!fd.ok()) return fd.error();
  fetch_fd_ = *fd;
  fetch_reader_ = http::MessageReader();
  return {};
}

void SocketProxyChannel::close_fetch_connection() {
  if (fetch_fd_ >= 0) {
    ::close(fetch_fd_);
    fetch_fd_ = -1;
  }
  fetch_reader_ = http::MessageReader();
}

Result<std::string> SocketProxyChannel::exchange_fetch(std::string_view wire) {
  // The server may have closed the keep-alive connection (timeout, restart)
  // since the last exchange; one reconnect-and-retry covers that without
  // masking a genuinely broken server.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (const auto open = ensure_fetch_connection(); !open.ok()) {
      return open.error();
    }
    if (const auto sent = send_all(fetch_fd_, wire); !sent.ok()) {
      close_fetch_connection();
      continue;
    }
    auto message = read_message(fetch_fd_, fetch_reader_);
    if (message.ok()) return message;
    close_fetch_connection();
  }
  return make_error(ErrorCode::kConnectionRefused,
                    "proxy connection failed twice");
}

proxy::ProxyFetchResult SocketProxyChannel::fetch(
    const http::Url& url, const proxy::RequestOptions& options) {
  proxy::ProxyFetchResult result;
  result.status = proxy::ProxyStatus::kAllAttemptsFailed;

  const auto wire = exchange_fetch(build_proxy_get(url, options));
  if (!wire.ok()) return result;
  auto response = http::Response::parse(*wire);
  if (!response.ok()) return result;

  const auto status = status_from_headers(response->headers);
  if (!status.ok()) return result;
  result.status = *status;

  if (const auto zid = response->headers.get("X-TFT-Zid")) {
    result.zid = std::string(*zid);
  }
  if (const auto exit_ip = response->headers.get("X-TFT-Exit-Ip")) {
    if (const auto address = Ipv4Address::parse(*exit_ip); address.ok()) {
      result.exit_address = *address;
    }
  }
  if (const auto asn = response->headers.get("X-TFT-Exit-Asn")) {
    std::from_chars(asn->data(), asn->data() + asn->size(), result.exit_asn);
  }
  if (const auto country = response->headers.get("X-TFT-Exit-Country")) {
    result.exit_country = std::string(*country);
  }
  if (const auto timeline = response->headers.get("X-TFT-Timeline")) {
    if (auto attempts = decode_attempts(*timeline); attempts.ok()) {
      result.timeline = *std::move(attempts);
    }
  }

  if (result.ok()) {
    // Strip the transport metadata: what remains is byte-for-byte the
    // response the in-process channel returns.
    for (const auto name : kMetadataHeaders) response->headers.remove(name);
    result.response = *std::move(response);
  }
  ++exchanges_;
  return result;
}

proxy::ConnectResult SocketProxyChannel::connect_and_handshake(
    net::Ipv4Address destination, std::uint16_t port, std::string_view sni,
    const proxy::RequestOptions& options) {
  proxy::ConnectResult result;
  result.status = proxy::ProxyStatus::kTunnelFailed;

  auto fd = connect_socket();
  if (!fd.ok()) return result;

  const auto finish = [&](proxy::ConnectResult outcome) {
    ::close(*fd);
    return outcome;
  };

  if (const auto sent = send_all(*fd, build_connect(destination, port, options));
      !sent.ok()) {
    return finish(result);
  }
  http::MessageReader message_reader;
  const auto wire = read_message(*fd, message_reader);
  if (!wire.ok()) return finish(result);
  const auto response = http::Response::parse(*wire);
  if (!response.ok()) return finish(result);

  if (response->status != 200) {
    // The refusal carries the engine status (e.g. port_not_allowed) in the
    // same metadata header as proxied responses.
    if (const auto status = status_from_headers(response->headers);
        status.ok()) {
      result.status = *status;
    }
    ++exchanges_;
    return finish(result);
  }

  if (const auto sent =
          send_all(*fd, frame(encode_tunnel_hello(TunnelHello{std::string(sni)})));
      !sent.ok()) {
    return finish(result);
  }
  FrameReader frame_reader;
  const auto payload = read_frame(*fd, frame_reader);
  if (!payload.ok()) return finish(result);
  const auto reply = decode_tunnel_reply(*payload);
  if (!reply.ok()) return finish(result);

  result.status = reply->status;
  result.zid = reply->zid;
  result.exit_address = reply->exit_address;
  result.exit_country = reply->exit_country;
  result.chain = reply->chain;
  ++exchanges_;
  return finish(result);
}

}  // namespace tft::net::server
