// Regenerates Table 9: the top content-monitoring entities, plus the §7.2
// headline numbers.
#include <map>

#include "common.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.08);
  const auto world = tft::bench::build_paper_world(options);
  const auto config = tft::bench::study_config(options);

  tft::core::ContentMonitorProbe probe(*world, config.monitoring);
  probe.run();
  const auto report = tft::core::analyze_monitoring(*world, probe.observations(),
                                                    config.monitoring_analysis);

  std::cout << tft::core::render_monitor_report(report) << "\n";
  std::cout << "Paper Table 9 reference (IPs / nodes / ASes / countries):\n"
               "  Trend Micro 55 / 6,571 / 734 / 13    TalkTalk 6 / 2,233 / 5 / 1\n"
               "  Commtouch 20 / 1,154 / 371 / 79      AnchorFree 223 / 461 / 225 / 98\n"
               "  Bluecoat 12 / 453 / 162 / 64         Tiscali U.K. 2 / 363 / 6 / 1\n";
  return 0;
}
