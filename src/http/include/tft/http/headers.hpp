// Ordered, case-insensitive HTTP header map (RFC 7230 semantics: names are
// case-insensitive, insertion order is preserved, repeated names allowed).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tft::http {

class HeaderMap {
 public:
  struct Entry {
    std::string name;
    std::string value;
  };

  /// Append a header (allows duplicates, preserves order).
  void add(std::string_view name, std::string_view value);

  /// Replace all headers of `name` with a single value.
  void set(std::string_view name, std::string_view value);

  /// Remove every header with `name`. Returns the number removed.
  std::size_t remove(std::string_view name);

  /// First value for `name` (case-insensitive), if present.
  std::optional<std::string_view> get(std::string_view name) const;

  /// All values for `name`, in order.
  std::vector<std::string_view> get_all(std::string_view name) const;

  bool has(std::string_view name) const { return get(name).has_value(); }

  const std::vector<Entry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  bool operator==(const HeaderMap&) const = default;

 private:
  std::vector<Entry> entries_;
};

}  // namespace tft::http
