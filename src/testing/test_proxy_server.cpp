#include "tft/testing/test_proxy_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "tft/world/spec.hpp"

namespace tft::testing {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

/// Bound on every blocking wait: scenario tests must fail, not hang.
constexpr int kWaitTimeoutMs = 10'000;
/// Pumped-mode stall guard (consecutive idle dispatch rounds).
constexpr int kIdleRoundLimit = 10'000;

}  // namespace

TestProxyServer::TestProxyServer() : TestProxyServer(Options{}) {}

TestProxyServer::TestProxyServer(Options options)
    : options_(std::move(options)) {
  world_ = world::build_world(world::mini_spec(), options_.scale, options_.seed);
  net::server::ProxyServerConfig config;
  if (!options_.threaded) {
    // Pumped fixtures are deterministic; wall time stays out of the loop
    // unless the scenario opts back in (timeout tests do, via configure).
    config.read_timeout_ms = 0;
  }
  if (options_.configure) options_.configure(config);
  server_ = std::make_unique<net::server::ProxyServer>(
      *world_->luminati, config, &world_->metrics, &world_->recorder);
  if (const auto started = server_->start(); !started.ok()) {
    throw std::runtime_error("TestProxyServer: " +
                             started.error().to_string());
  }
  // start() is synchronous — the listener is accepting before run() even
  // begins, so clients never poll-until-listening.
  if (options_.threaded) {
    thread_ = std::thread([this] { server_->run(); });
  }
}

TestProxyServer::~TestProxyServer() { stop(); }

void TestProxyServer::pump() {
  while (server_->poll_once(0)) {
  }
}

void TestProxyServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (thread_.joinable()) {
    server_->request_stop();
    thread_.join();
  }
  server_->shutdown();
}

TestSocket::TestSocket(std::uint16_t port, net::server::ProxyServer* pump)
    : pump_(pump) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    if (errno != EINPROGRESS) {
      close();
      return;
    }
    if (!wait_for(POLLOUT).ok()) {
      close();
      return;
    }
    int error = 0;
    socklen_t length = sizeof(error);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &length);
    if (error != 0) close();
  }
}

TestSocket::~TestSocket() { close(); }

void TestSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TestSocket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Result<void> TestSocket::wait_for(short events) {
  if (pump_ != nullptr) {
    for (int idle = 0; idle < kIdleRoundLimit;) {
      pollfd probe{fd_, events, 0};
      if (::poll(&probe, 1, 0) > 0 &&
          (probe.revents & (events | POLLHUP | POLLERR)) != 0) {
        return {};
      }
      if (pump_->poll_once(0)) {
        idle = 0;
      } else {
        ++idle;
      }
    }
    return make_error(ErrorCode::kTimeout, "pumped wait made no progress");
  }
  pollfd probe{fd_, events, 0};
  const int ready = ::poll(&probe, 1, kWaitTimeoutMs);
  if (ready > 0) return {};
  if (ready == 0) return make_error(ErrorCode::kTimeout, "socket wait timed out");
  return make_error(ErrorCode::kInternal,
                    std::string("poll: ") + std::strerror(errno));
}

Result<void> TestSocket::send_all(std::string_view bytes) {
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "socket not connected");
  std::size_t sent_total = 0;
  while (sent_total < bytes.size()) {
    const ssize_t sent = ::send(fd_, bytes.data() + sent_total,
                                bytes.size() - sent_total, MSG_NOSIGNAL);
    if (sent > 0) {
      sent_total += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (const auto ready = wait_for(POLLOUT); !ready.ok()) return ready;
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return make_error(ErrorCode::kInternal,
                      std::string("send: ") + std::strerror(errno));
  }
  return {};
}

Result<std::string> TestSocket::recv_message() {
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "socket not connected");
  for (;;) {
    if (auto message = reader_.next_message()) return *std::move(message);
    char buffer[16384];
    const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (received > 0) {
      if (const auto fed = reader_.feed(
              std::string_view(buffer, static_cast<std::size_t>(received)));
          !fed.ok()) {
        return fed.error();
      }
      continue;
    }
    if (received == 0) {
      return make_error(ErrorCode::kConnectionRefused,
                        "peer closed before a complete message");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (const auto ready = wait_for(POLLIN); !ready.ok()) {
        return ready.error();
      }
      continue;
    }
    if (errno == EINTR) continue;
    return make_error(ErrorCode::kInternal,
                      std::string("recv: ") + std::strerror(errno));
  }
}

Result<std::string> TestSocket::recv_until_eof() {
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "socket not connected");
  std::string out;
  for (;;) {
    char buffer[16384];
    const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (received > 0) {
      out.append(buffer, static_cast<std::size_t>(received));
      continue;
    }
    if (received == 0) return out;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (const auto ready = wait_for(POLLIN); !ready.ok()) {
        return ready.error();
      }
      continue;
    }
    if (errno == EINTR) continue;
    // A reset after we half-closed still means "peer is done".
    if (errno == ECONNRESET) return out;
    return make_error(ErrorCode::kInternal,
                      std::string("recv: ") + std::strerror(errno));
  }
}

}  // namespace tft::testing
