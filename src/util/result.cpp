#include "tft/util/result.hpp"

namespace tft::util {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kProtocolViolation:
      return "protocol_violation";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kConnectionRefused:
      return "connection_refused";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out{tft::util::to_string(code)};
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace tft::util
