// Empirical distributions: the CDFs and percentiles the paper plots
// (Figure 5) and summary ratios used throughout the tables.
#pragma once

#include <string>
#include <vector>

namespace tft::stats {

/// Empirical CDF over double-valued samples.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void add(double sample);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x. 0 for an empty distribution.
  double at(double x) const;

  /// p-th percentile via linear interpolation, p in [0, 100].
  double percentile(double p) const;

  double min() const;
  double max() const;
  double mean() const;
  double median() const { return percentile(50); }

  /// (x, F(x)) pairs at `points` log-spaced x values over [lo, hi] —
  /// matching the paper's log-x CDF plot (Figure 5).
  std::vector<std::pair<double, double>> log_spaced_curve(double lo, double hi,
                                                          int points) const;

  /// Render a fixed-width ASCII sparkline of the CDF over log-spaced x.
  std::string ascii_curve(double lo, double hi, int width) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace tft::stats
