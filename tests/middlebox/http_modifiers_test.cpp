#include "tft/middlebox/http_modifiers.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "tft/http/content.hpp"

namespace tft::middlebox {
namespace {

class HttpModifiersTest : public ::testing::Test {
 protected:
  HttpModifiersTest() {
    auto server = std::make_shared<http::OriginServer>("origin");
    server->add_path_for_any_host(
        "/page.html",
        http::Response::make(200, "OK", http::reference_html(), "text/html"));
    server->add_path_for_any_host(
        "/image.simg",
        http::Response::make(200, "OK", http::reference_image(), "image/simg"));
    server->add_path_for_any_host(
        "/library.js", http::Response::make(200, "OK", http::reference_javascript(),
                                            "application/javascript"));
    server_ = server.get();
    registry_.add(destination_, std::move(server));

    context_.client_address = net::Ipv4Address(203, 0, 113, 5);
    context_.destination = destination_;
    context_.clock = &clock_;
    context_.rng = &rng_;
    context_.web = &registry_;
  }

  http::Request request(const char* path) {
    return http::Request::origin_get(
        *http::Url::parse(std::string("http://probe.example") + path));
  }

  net::Ipv4Address destination_{198, 51, 100, 10};
  http::WebServerRegistry registry_;
  http::OriginServer* server_ = nullptr;
  sim::EventQueue clock_;
  util::Rng rng_{7};
  FetchContext context_;
};

TEST_F(HttpModifiersTest, InjectBeforeBodyEnd) {
  EXPECT_EQ(inject_before_body_end("<html><body>x</body></html>", "<ad>"),
            "<html><body>x<ad></body></html>");
  EXPECT_EQ(inject_before_body_end("no closing tag", "<ad>"), "no closing tag<ad>");
}

TEST_F(HttpModifiersTest, HtmlInjectorAddsSnippet) {
  HtmlInjector injector({"adware", "<script>var oiasudoj;</script>", 1024, 1.0});
  auto response = http::Response::make(200, "OK", http::reference_html(), "text/html");
  const auto modified = injector.after_response(request("/page.html"), response, context_);
  EXPECT_NE(modified.body, http::reference_html());
  EXPECT_NE(modified.body.find("var oiasudoj"), std::string::npos);
  EXPECT_EQ(modified.headers.get("Content-Length"),
            std::to_string(modified.body.size()));
}

TEST_F(HttpModifiersTest, HtmlInjectorSkipsNonHtml) {
  HtmlInjector injector({"adware", "<ad>", 0, 1.0});
  auto js = http::Response::make(200, "OK", std::string(4096, 'j'),
                                 "application/javascript");
  EXPECT_EQ(injector.after_response(request("/library.js"), js, context_).body,
            js.body);
}

TEST_F(HttpModifiersTest, HtmlInjectorSkipsSmallObjects) {
  // §5.1: sub-1KB objects saw much less modification.
  HtmlInjector injector({"adware", "<ad>", 1024, 1.0});
  auto small = http::Response::make(200, "OK", "<html><body>tiny</body></html>");
  EXPECT_EQ(injector.after_response(request("/page.html"), small, context_).body,
            small.body);
}

TEST_F(HttpModifiersTest, HtmlInjectorSkipsErrors) {
  HtmlInjector injector({"adware", "<ad>", 0, 1.0});
  auto error =
      http::Response::make(404, "Not Found", std::string(2048, 'x'), "text/html");
  EXPECT_EQ(injector.after_response(request("/page.html"), error, context_).body,
            error.body);
}

TEST_F(HttpModifiersTest, HtmlInjectorProbability) {
  HtmlInjector never({"adware", "<ad>", 0, 0.0});
  auto response = http::Response::make(200, "OK", http::reference_html(), "text/html");
  EXPECT_EQ(never.after_response(request("/page.html"), response, context_).body,
            http::reference_html());
}

TEST_F(HttpModifiersTest, ImageTranscoderRecompresses) {
  ImageTranscoder transcoder({"vodafone", 53, 1.0});
  auto response =
      http::Response::make(200, "OK", http::reference_image(), "image/simg");
  const auto modified =
      transcoder.after_response(request("/image.simg"), response, context_);
  EXPECT_LT(modified.body.size(), http::reference_image().size());
  const auto info = http::parse_simg(modified.body);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->quality, 53);
}

TEST_F(HttpModifiersTest, ImageTranscoderIgnoresNonImages) {
  ImageTranscoder transcoder({"vodafone", 53, 1.0});
  auto html = http::Response::make(200, "OK", http::reference_html(), "text/html");
  EXPECT_EQ(transcoder.after_response(request("/page.html"), html, context_).body,
            html.body);
}

TEST_F(HttpModifiersTest, ObjectReplacerSwapsMatchingType) {
  ObjectReplacer replacer({"js-error", "javascript", "<html>error</html>", 200});
  auto js = http::Response::make(200, "OK", http::reference_javascript(),
                                 "application/javascript");
  const auto replaced = replacer.after_response(request("/library.js"), js, context_);
  EXPECT_EQ(replaced.body, "<html>error</html>");
  auto html = http::Response::make(200, "OK", http::reference_html(), "text/html");
  EXPECT_EQ(replacer.after_response(request("/page.html"), html, context_).body,
            html.body);
}

TEST_F(HttpModifiersTest, ContentBlockerShortCircuits) {
  ContentBlocker blocker({"cap", "<html>Bandwidth exceeded</html>", 403});
  const auto response = blocker.before_request(request("/page.html"), context_);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 403);
}

TEST_F(HttpModifiersTest, InterceptedFetchPlainPassThrough) {
  const auto response = intercepted_fetch({}, request("/page.html"), context_);
  EXPECT_EQ(response.body, http::reference_html());
}

TEST_F(HttpModifiersTest, InterceptedFetchAppliesChainInOrder) {
  HttpInterceptorList chain;
  chain.push_back(std::make_shared<HtmlInjector>(
      HtmlInjector::Config{"a", "<!--first-->", 0, 1.0}));
  chain.push_back(std::make_shared<HtmlInjector>(
      HtmlInjector::Config{"b", "<!--second-->", 0, 1.0}));
  const auto response = intercepted_fetch(chain, request("/page.html"), context_);
  // after_response runs in reverse: "second" is injected first (closer to
  // the origin), then "first".
  const auto first = response.body.find("<!--first-->");
  const auto second = response.body.find("<!--second-->");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(second, first);
}

TEST_F(HttpModifiersTest, InterceptedFetchShortCircuitWins) {
  HttpInterceptorList chain;
  chain.push_back(std::make_shared<ContentBlocker>(
      ContentBlocker::Config{"cap", "blocked!", 403}));
  chain.push_back(std::make_shared<HtmlInjector>(
      HtmlInjector::Config{"a", "<ad>", 0, 1.0}));
  const auto response = intercepted_fetch(chain, request("/page.html"), context_);
  EXPECT_EQ(response.status, 403);
  EXPECT_TRUE(server_->request_log().empty());  // never reached the origin
}

TEST_F(HttpModifiersTest, RequestHoldDelaysOriginTimestamp) {
  context_.request_hold = sim::Duration::seconds(2);
  intercepted_fetch({}, request("/page.html"), context_);
  ASSERT_EQ(server_->request_log().size(), 1u);
  EXPECT_EQ(server_->request_log().front().time,
            sim::Instant::epoch() + sim::Duration::seconds(2));
}

}  // namespace
}  // namespace tft::middlebox
