#include "tft/dns/message.hpp"

#include <gtest/gtest.h>

namespace tft::dns {
namespace {

TEST(DnsMessageTest, QueryFactory) {
  const auto message = Message::query(0x1234, *DnsName::parse("example.com"));
  EXPECT_EQ(message.id, 0x1234);
  EXPECT_FALSE(message.flags.response);
  EXPECT_TRUE(message.flags.recursion_desired);
  ASSERT_EQ(message.questions.size(), 1u);
  EXPECT_EQ(message.questions[0].name.to_string(), "example.com");
  EXPECT_EQ(message.questions[0].type, RecordType::kA);
}

TEST(DnsMessageTest, ResponseMirrorsQuery) {
  const auto query = Message::query(7, *DnsName::parse("a.b"), RecordType::kTxt);
  const auto response = Message::response_to(query, Rcode::kNxDomain);
  EXPECT_EQ(response.id, 7);
  EXPECT_TRUE(response.flags.response);
  EXPECT_TRUE(response.is_nxdomain());
  ASSERT_EQ(response.questions.size(), 1u);
  EXPECT_EQ(response.questions[0].type, RecordType::kTxt);
}

TEST(DnsMessageTest, ARecordRoundTrip) {
  const auto record =
      ResourceRecord::a(*DnsName::parse("host.example"), net::Ipv4Address(1, 2, 3, 4), 60);
  EXPECT_EQ(record.rdata.size(), 4u);
  const auto address = record.a_address();
  ASSERT_TRUE(address.ok());
  EXPECT_EQ(address->to_string(), "1.2.3.4");
  EXPECT_EQ(record.ttl, 60u);
}

TEST(DnsMessageTest, ARecordRejectsWrongShape) {
  ResourceRecord record;
  record.type = RecordType::kA;
  record.rdata = "abc";  // 3 bytes, not 4
  EXPECT_FALSE(record.a_address().ok());
  record.type = RecordType::kTxt;
  record.rdata = std::string(4, 'x');
  EXPECT_FALSE(record.a_address().ok());
}

TEST(DnsMessageTest, CnameRoundTrip) {
  const auto record = ResourceRecord::cname(*DnsName::parse("alias.example"),
                                            *DnsName::parse("real.example"));
  const auto target = record.name_target();
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target->to_string(), "real.example");
}

TEST(DnsMessageTest, TxtRoundTripShort) {
  const auto record = ResourceRecord::txt(*DnsName::parse("t.example"), "hello world");
  const auto text = record.txt_text();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello world");
}

TEST(DnsMessageTest, TxtRoundTripLongSplitsChunks) {
  const std::string big(700, 'z');
  const auto record = ResourceRecord::txt(*DnsName::parse("t.example"), big);
  // 700 bytes -> 3 character-strings (255+255+190) + 3 length bytes.
  EXPECT_EQ(record.rdata.size(), 703u);
  EXPECT_EQ(*record.txt_text(), big);
}

TEST(DnsMessageTest, TxtEmpty) {
  const auto record = ResourceRecord::txt(*DnsName::parse("t.example"), "");
  EXPECT_EQ(*record.txt_text(), "");
}

TEST(DnsMessageTest, FirstAReturnsFirstARecord) {
  auto message = Message::query(1, *DnsName::parse("x.example"));
  EXPECT_FALSE(message.first_a().has_value());
  message.answers.push_back(
      ResourceRecord::cname(*DnsName::parse("x.example"), *DnsName::parse("y.example")));
  message.answers.push_back(
      ResourceRecord::a(*DnsName::parse("y.example"), net::Ipv4Address(9, 9, 9, 9)));
  const auto address = message.first_a();
  ASSERT_TRUE(address.has_value());
  EXPECT_EQ(address->to_string(), "9.9.9.9");
}

TEST(DnsMessageTest, EnumNames) {
  EXPECT_EQ(to_string(RecordType::kA), "A");
  EXPECT_EQ(to_string(RecordType::kCname), "CNAME");
  EXPECT_EQ(to_string(Rcode::kNxDomain), "NXDOMAIN");
  EXPECT_EQ(to_string(Rcode::kNoError), "NOERROR");
}

}  // namespace
}  // namespace tft::dns
