#include "tft/smtp/protocol.hpp"

#include <charconv>

#include "tft/util/strings.hpp"

namespace tft::smtp {

using util::ErrorCode;
using util::make_error;
using util::Result;

Result<Command> Command::parse(std::string_view line) {
  line = util::trim(line);
  if (line.empty()) {
    return make_error(ErrorCode::kParseError, "empty SMTP command");
  }
  const auto space = line.find(' ');
  std::string_view verb = space == std::string_view::npos ? line : line.substr(0, space);
  std::string_view argument =
      space == std::string_view::npos ? std::string_view{} : line.substr(space + 1);

  std::string upper;
  upper.reserve(verb.size());
  for (const char c : verb) {
    if (c < 'A' || (c > 'Z' && c < 'a') || c > 'z') {
      return make_error(ErrorCode::kParseError, "non-alphabetic SMTP verb");
    }
    upper.push_back(static_cast<char>(c >= 'a' ? c - ('a' - 'A') : c));
  }
  return Command{std::move(upper), std::string(util::trim(argument))};
}

std::string Command::serialize() const {
  if (argument.empty()) return verb + "\r\n";
  return verb + ' ' + argument + "\r\n";
}

Reply Reply::single(int code, std::string_view text) {
  return Reply{code, {std::string(text)}};
}

Reply Reply::multi(int code, std::vector<std::string> lines) {
  if (lines.empty()) lines.push_back("");
  return Reply{code, std::move(lines)};
}

std::string Reply::serialize() const {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += std::to_string(code);
    out += (i + 1 == lines.size()) ? ' ' : '-';
    out += lines[i];
    out += "\r\n";
  }
  if (lines.empty()) {
    out = std::to_string(code) + " \r\n";
  }
  return out;
}

Result<Reply> Reply::parse(std::string_view wire) {
  Reply reply;
  bool saw_final = false;
  for (const auto raw_line : util::split(wire, '\n')) {
    std::string_view line = raw_line;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (saw_final) {
      return make_error(ErrorCode::kParseError, "text after final SMTP reply line");
    }
    if (line.size() < 4) {
      return make_error(ErrorCode::kParseError, "short SMTP reply line");
    }
    int code = 0;
    const auto [ptr, ec] = std::from_chars(line.data(), line.data() + 3, code);
    if (ec != std::errc{} || ptr != line.data() + 3 || code < 100 || code > 599) {
      return make_error(ErrorCode::kParseError, "bad SMTP reply code");
    }
    const char separator = line[3];
    if (separator != ' ' && separator != '-') {
      return make_error(ErrorCode::kParseError, "bad SMTP reply separator");
    }
    if (reply.lines.empty()) {
      reply.code = code;
    } else if (code != reply.code) {
      return make_error(ErrorCode::kParseError, "inconsistent SMTP reply codes");
    }
    reply.lines.emplace_back(line.substr(4));
    saw_final = separator == ' ';
  }
  if (reply.lines.empty() || !saw_final) {
    return make_error(ErrorCode::kParseError, "unterminated SMTP reply");
  }
  return reply;
}

bool Reply::has_capability(std::string_view token) const {
  for (const auto& line : lines) {
    if (util::iequals(util::trim(line), token)) return true;
  }
  return false;
}

}  // namespace tft::smtp
