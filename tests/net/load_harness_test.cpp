// LoadGenerator scenarios against a live threaded server: closed-loop and
// open-loop swarms that must validate every response, chaos swarms whose
// misbehaving clients must be contained (408s/400s/clean closes) without
// disturbing well-behaved traffic or leaking fds, and the report plumbing
// (latency percentiles, error taxonomy, JSON shape).
#include <dirent.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "tft/net/client/chaos.hpp"
#include "tft/net/client/load_client.hpp"
#include "tft/net/server/framing.hpp"
#include "tft/testing/test_proxy_server.hpp"
#include "tft/util/rng.hpp"

namespace tft::net::client {
namespace {

std::size_t open_fd_count() {
  std::size_t count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

std::unique_ptr<testing::TestProxyServer> make_server(int read_timeout_ms = 0) {
  testing::TestProxyServer::Options options;
  options.threaded = true;
  if (read_timeout_ms > 0) {
    options.configure = [read_timeout_ms](net::server::ProxyServerConfig& c) {
      c.read_timeout_ms = read_timeout_ms;
    };
  }
  return std::make_unique<testing::TestProxyServer>(std::move(options));
}

LoadGenConfig swarm_config(const testing::TestProxyServer& server,
                           std::size_t connections, int duration_ms) {
  LoadGenConfig config;
  config.port = server.port();
  config.connections = connections;
  config.duration_ms = duration_ms;
  return config;
}

void add_connect_targets(LoadGenConfig& config,
                         testing::TestProxyServer& server) {
  for (const auto& site : server.world().https_sites) {
    config.connect_targets.push_back({site.address, 443, site.host});
    if (config.connect_targets.size() >= 4) break;
  }
}

TEST(LoadHarnessTest, ClosedLoopSwarmValidatesEveryResponse) {
  auto server = make_server();
  auto config = swarm_config(*server, 16, 600);
  add_connect_targets(config, *server);

  const std::size_t fds_before = open_fd_count();
  LoadReport report;
  {
    LoadGenerator generator(config);
    auto result = generator.run();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    report = *std::move(result);
  }

  EXPECT_GT(report.requests_sent, 100u);
  EXPECT_EQ(report.validation_failures, 0u);
  EXPECT_EQ(report.responses_ok, report.requests_sent);
  EXPECT_GT(report.achieved_rps, 0.0);

  // All three request classes ran and produced latency percentiles.
  ASSERT_TRUE(report.classes.count("get"));
  ASSERT_TRUE(report.classes.count("pipeline"));
  ASSERT_TRUE(report.classes.count("connect"));
  for (const auto& [name, stats] : report.classes) {
    EXPECT_GT(stats.completed, 0u) << name;
    EXPECT_LE(stats.p50_us, stats.p95_us) << name;
    EXPECT_LE(stats.p95_us, stats.p99_us) << name;
  }
  // The taxonomy saw proxy statuses and tunnel replies.
  EXPECT_TRUE(report.errors.count("proxy_status.ok"));
  EXPECT_TRUE(report.errors.count("tunnel_status.ok"));

  // The swarm's sockets and epoll fd die with the generator.
  std::size_t fds_after = open_fd_count();
  for (int round = 0; round < 100 && fds_after > fds_before; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fds_after = open_fd_count();
  }
  EXPECT_EQ(fds_after, fds_before);
}

TEST(LoadHarnessTest, OpenLoopPacesToTargetRate) {
  auto server = make_server();
  auto config = swarm_config(*server, 8, 1000);
  config.target_rps = 2000.0;

  LoadGenerator generator(config);
  auto result = generator.run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  // Open loop: issue count tracks the schedule, not the server. Generous
  // bounds — CI boxes stall — but a closed loop would blow far past 2x.
  EXPECT_GE(result->requests_sent, 700u);
  EXPECT_LE(result->requests_sent, 4000u);
  EXPECT_EQ(result->validation_failures, 0u);
}

TEST(LoadHarnessTest, ReportJsonCarriesClassesAndTaxonomy) {
  auto server = make_server();
  auto config = swarm_config(*server, 4, 300);

  LoadGenerator generator(config);
  auto result = generator.run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  const std::string json = result->to_json();
  EXPECT_NE(json.find("\"requests_sent\""), std::string::npos);
  EXPECT_NE(json.find("\"classes\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_us\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\""), std::string::npos);
  EXPECT_NE(json.find("\"proxy_status.ok\""), std::string::npos);
}

TEST(LoadHarnessTest, RefusesConfigWithoutValidTargets) {
  LoadGenConfig config;
  config.port = 1;  // never dialed: the config is rejected first
  config.get_targets = {"not a url", ":::"};
  LoadGenerator generator(config);
  EXPECT_FALSE(generator.run().ok());
}

// Chaos swarm: every misbehavior class runs against a short-timeout server.
// The server must answer slow-drips with 408, malformed frames with
// 400/close, survive resets/half-closes/idle holds — and keep serving the
// well-behaved side with zero validation failures, within a (very generous)
// latency SLO, without leaking a single fd.
TEST(LoadHarnessTest, ChaosClientsAreContained) {
  auto server = make_server(/*read_timeout_ms=*/600);
  auto config = swarm_config(*server, 8, 2500);
  add_connect_targets(config, *server);
  config.chaos_clients = 10;  // two full rounds over the 5 behaviors

  const std::size_t fds_before = open_fd_count();
  LoadReport report;
  {
    LoadGenerator generator(config);
    auto result = generator.run();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    report = *std::move(result);
  }

  // Well-behaved traffic is undisturbed.
  EXPECT_GT(report.responses_ok, 100u);
  EXPECT_EQ(report.validation_failures, 0u);
  const auto get = report.classes.find("get");
  if (get != report.classes.end() && get->second.completed > 0) {
    EXPECT_LT(get->second.p95_us, 500'000) << "GET p95 SLO while chaos runs";
  }

  // Every behavior actually ran...
  EXPECT_GE(report.chaos.at("slow_drip.cycles"), 1u);
  EXPECT_GE(report.chaos.at("malformed_frame.cycles"), 1u);
  EXPECT_GE(report.chaos.at("half_close.cycles"), 1u);
  EXPECT_GE(report.chaos.at("reset.cycles"), 1u);
  EXPECT_GE(report.chaos.at("idle_hold.cycles"), 1u);
  // ...and the server pushed back the way RFC-abiding servers do: 408 for
  // the slow-drip (deadline armed at accept), close/400 for garbage frames.
  EXPECT_GE(report.chaos.at("slow_drip.got_408"), 1u);
  EXPECT_GE(report.chaos.at("malformed_frame.frames_sent"), 1u);
  EXPECT_GE(report.chaos.at("malformed_frame.closed"), 1u);
  EXPECT_GE(report.chaos.at("half_close.half_closed"), 1u);
  EXPECT_GE(report.chaos.at("reset.reset_sent"), 1u);

  std::size_t fds_after = open_fd_count();
  for (int round = 0; round < 100 && fds_after > fds_before; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fds_after = open_fd_count();
  }
  EXPECT_EQ(fds_after, fds_before);

  // Server side: chaos produced timeouts/parse errors, but nothing leaked
  // there either — every connection it ever accepted is closed again.
  server->stop();
  EXPECT_EQ(server->server().open_connections(), 0u);
  EXPECT_GE(server->counter("net.http.read_timeouts"), 1u);
}

// The chaos generators themselves: the truncated-hello corpus must cut at
// every u32 length-prefix boundary, and the mutators must stay deterministic
// under a fixed seed (the ctest smoke greps depend on it).
TEST(LoadHarnessTest, TruncatedHelloCorpusCoversPrefixBoundaries) {
  const auto corpus = truncated_hello_corpus();
  ASSERT_GE(corpus.size(), 6u);
  // First four entries: 1..4 bytes — inside the u32 length prefix.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(corpus[i].size(), i + 1);
  }
  // Every entry is a strict prefix of the full frame (the last one short by
  // exactly one byte), so none of them can ever complete a frame.
  const auto full = net::server::frame(net::server::encode_tunnel_hello(
      net::server::TunnelHello{"chaos.tft-study.net"}));
  for (const auto& cut : corpus) {
    EXPECT_LT(cut.size(), full.size());
    EXPECT_EQ(full.compare(0, cut.size(), cut), 0);
  }
}

TEST(LoadHarnessTest, MalformedGeneratorsAreSeedDeterministic) {
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(malformed_tunnel_frame(rng_a), malformed_tunnel_frame(rng_b));
  }
  util::Rng rng_c(8);
  util::Rng rng_d(7);
  bool any_difference = false;
  for (int i = 0; i < 32; ++i) {
    if (malformed_tunnel_frame(rng_c) != malformed_tunnel_frame(rng_d)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace tft::net::client
