// Extension (§9, conclusion): continuous measurement. The paper argues its
// approach enables repeated worldwide studies that show how violations
// evolve. This bench runs six monthly rounds over the paper world while an
// ISP deploys (round 2) and retires (round 4) a search-assist box, and one
// of the Table 4 ISPs retires its deployment in round 3.
#include "common.hpp"

#include "tft/core/longitudinal.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.03);
  auto world = tft::bench::build_paper_world(options);
  const auto base = tft::bench::study_config(options);

  tft::core::LongitudinalConfig config;
  config.rounds = 6;
  config.interval = tft::sim::Duration::hours(24 * 30);
  config.probe = base.dns;
  config.analysis = base.dns_analysis;

  tft::core::LongitudinalDnsStudy study(*world, config);
  study.set_between_rounds([](int next_round, tft::world::World& w) {
    if (next_round == 2) {
      // A previously clean ISP deploys NXDOMAIN "search assistance".
      w.set_isp_hijack("FR ISP 1", tft::dns::NxdomainHijackPolicy{
                                       tft::net::Ipv4Address(203, 0, 113, 199), 60,
                                       1.0});
      std::cerr << "[scenario] round 2: FR ISP 1 deploys a search-assist box\n";
    }
    if (next_round == 3) {
      // One of the paper's Table 4 ISPs retires its deployment.
      w.set_isp_hijack("Verizon", std::nullopt);
      std::cerr << "[scenario] round 3: Verizon retires NXDOMAIN hijacking\n";
    }
    if (next_round == 4) {
      w.set_isp_hijack("FR ISP 1", std::nullopt);
      std::cerr << "[scenario] round 4: FR ISP 1 retires the box\n";
    }
  });

  const auto rounds = study.run();
  std::cout << tft::core::render_longitudinal(rounds);
  std::cout << "\nReading: the series shows the FR ISP appearing in rounds\n"
               "2-3 and disappearing in round 4, and Verizon dropping out\n"
               "from round 3 — the kind of evolution §9 argues continuous\n"
               "measurement makes visible.\n";
  return 0;
}
