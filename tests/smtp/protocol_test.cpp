#include "tft/smtp/protocol.hpp"

#include <gtest/gtest.h>

namespace tft::smtp {
namespace {

TEST(SmtpCommandTest, ParseVerbAndArgument) {
  const auto command = Command::parse("MAIL FROM:<probe@tft-study.net>");
  ASSERT_TRUE(command.ok());
  EXPECT_EQ(command->verb, "MAIL");
  EXPECT_EQ(command->argument, "FROM:<probe@tft-study.net>");
}

TEST(SmtpCommandTest, VerbIsCaseInsensitive) {
  EXPECT_EQ(Command::parse("ehlo probe.example")->verb, "EHLO");
  EXPECT_EQ(Command::parse("StartTLS")->verb, "STARTTLS");
}

TEST(SmtpCommandTest, NoArgument) {
  const auto command = Command::parse("QUIT");
  ASSERT_TRUE(command.ok());
  EXPECT_EQ(command->verb, "QUIT");
  EXPECT_TRUE(command->argument.empty());
}

TEST(SmtpCommandTest, RejectsGarbage) {
  EXPECT_FALSE(Command::parse("").ok());
  EXPECT_FALSE(Command::parse("   ").ok());
  EXPECT_FALSE(Command::parse("123 xyz").ok());
  EXPECT_FALSE(Command::parse("M@IL FROM:<x>").ok());
}

TEST(SmtpCommandTest, SerializeRoundTrip) {
  const Command command{"RCPT", "TO:<inbox@example.net>"};
  EXPECT_EQ(command.serialize(), "RCPT TO:<inbox@example.net>\r\n");
  const auto parsed = Command::parse("RCPT TO:<inbox@example.net>");
  EXPECT_EQ(parsed->serialize(), command.serialize());
  EXPECT_EQ((Command{"QUIT", ""}).serialize(), "QUIT\r\n");
}

TEST(SmtpReplyTest, SingleLineSerialize) {
  const Reply reply = Reply::single(220, "mail.tft-study.net ESMTP");
  EXPECT_EQ(reply.serialize(), "220 mail.tft-study.net ESMTP\r\n");
  EXPECT_TRUE(reply.positive());
}

TEST(SmtpReplyTest, MultilineSerialize) {
  const Reply reply = Reply::multi(250, {"mail.example greets you", "PIPELINING",
                                         "STARTTLS", "8BITMIME"});
  EXPECT_EQ(reply.serialize(),
            "250-mail.example greets you\r\n250-PIPELINING\r\n250-STARTTLS\r\n"
            "250 8BITMIME\r\n");
}

TEST(SmtpReplyTest, ParseRoundTrip) {
  const Reply original = Reply::multi(250, {"a", "b", "c"});
  const auto parsed = Reply::parse(original.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->code, 250);
  EXPECT_EQ(parsed->lines, original.lines);
}

TEST(SmtpReplyTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Reply::parse("").ok());
  EXPECT_FALSE(Reply::parse("25 X\r\n").ok());
  EXPECT_FALSE(Reply::parse("abc hello\r\n").ok());
  EXPECT_FALSE(Reply::parse("250-first\r\n").ok());           // no final line
  EXPECT_FALSE(Reply::parse("250-first\r\n354 last\r\n").ok());  // code switch
  EXPECT_FALSE(Reply::parse("250 done\r\n250 extra\r\n").ok());  // text after final
  EXPECT_FALSE(Reply::parse("999x\r\n").ok());
}

TEST(SmtpReplyTest, NegativeCodes) {
  EXPECT_FALSE(Reply::single(502, "nope").positive());
  EXPECT_FALSE(Reply::single(454, "try later").positive());
  EXPECT_TRUE(Reply::single(354, "go ahead").positive());
}

TEST(SmtpReplyTest, CapabilityLookup) {
  const Reply reply = Reply::multi(250, {"host greets", "PIPELINING", "STARTTLS"});
  EXPECT_TRUE(reply.has_capability("starttls"));
  EXPECT_TRUE(reply.has_capability("PIPELINING"));
  EXPECT_FALSE(reply.has_capability("8BITMIME"));
  EXPECT_FALSE(reply.has_capability("START"));
}

}  // namespace
}  // namespace tft::smtp
