#include "tft/dns/resolver.hpp"

#include <algorithm>

#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/util/hash.hpp"

namespace tft::dns {

void AuthorityRegistry::register_zone(std::shared_ptr<AuthoritativeServer> server) {
  zones_.push_back(std::move(server));
}

AuthoritativeServer* AuthorityRegistry::find(const DnsName& name) const {
  AuthoritativeServer* best = nullptr;
  std::size_t best_labels = 0;
  for (const auto& zone : zones_) {
    if (name.is_within(zone->origin()) &&
        (best == nullptr || zone->origin().label_count() >= best_labels)) {
      best = zone.get();
      best_labels = zone->origin().label_count();
    }
  }
  return best;
}

RecursiveResolver::RecursiveResolver(net::Ipv4Address service_address,
                                     net::Ipv4Address egress_address,
                                     const AuthorityRegistry* authorities,
                                     sim::EventQueue* clock)
    : service_address_(service_address),
      egress_address_(egress_address),
      authorities_(authorities),
      clock_(clock) {}

Message RecursiveResolver::resolve(const Message& query, double hijack_roll) {
  if (query.questions.empty()) {
    return Message::response_to(query, Rcode::kFormErr);
  }
  if (metrics_ != nullptr) metrics_->add("resolver.queries");
  const Question& question = query.questions.front();
  const std::string key =
      question.name.canonical() + '/' + std::string(to_string(question.type));

  const auto it = cache_.find(key);
  if (it != cache_.end() && it->second.expires > clock_->now()) {
    if (metrics_ != nullptr) metrics_->add("resolver.cache_hits");
    Message response = Message::response_to(query, it->second.rcode);
    response.flags.recursion_available = true;
    response.answers = it->second.answers;
    return apply_hijack(query, std::move(response), hijack_roll);
  }

  Message response = resolve_uncached(query);

  // Cache positive answers by minimum record TTL and NXDOMAIN negatively.
  std::uint32_t ttl = 60;
  if (!response.answers.empty()) {
    ttl = response.answers.front().ttl;
    for (const auto& record : response.answers) ttl = std::min(ttl, record.ttl);
  }
  if (response.flags.rcode == Rcode::kNoError ||
      response.flags.rcode == Rcode::kNxDomain) {
    cache_[key] = CacheEntry{response.flags.rcode, response.answers,
                             clock_->now() + sim::Duration::seconds(ttl)};
  }

  return apply_hijack(query, std::move(response), hijack_roll);
}

Message RecursiveResolver::resolve_uncached(const Message& query) {
  const Question& question = query.questions.front();
  AuthoritativeServer* authority = authorities_->find(question.name);
  if (authority == nullptr) {
    Message response = Message::response_to(query, Rcode::kServFail);
    response.flags.recursion_available = true;
    return response;
  }
  Message response = authority->handle(query, egress_address_, clock_->now());
  response.flags.recursion_available = true;
  response.flags.authoritative = false;

  // CNAME chasing: when an A query answers only with aliases, follow the
  // chain (possibly across zones) and append the terminal records.
  if (question.type == RecordType::kA && response.flags.rcode == Rcode::kNoError) {
    int hops = 0;
    for (;;) {
      if (response.first_a().has_value()) break;
      // The alias to chase is the last CNAME in the answer section.
      const ResourceRecord* alias = nullptr;
      for (const auto& record : response.answers) {
        if (record.type == RecordType::kCname) alias = &record;
      }
      if (alias == nullptr || ++hops > 8) break;
      const auto target = alias->name_target();
      if (!target) break;
      AuthoritativeServer* next = authorities_->find(*target);
      if (next == nullptr) break;
      const auto chained_query = Message::query(query.id, *target, RecordType::kA);
      Message chained = next->handle(chained_query, egress_address_, clock_->now());
      if (chained.flags.rcode != Rcode::kNoError || chained.answers.empty()) {
        break;
      }
      // Stop if the chain loops back to a name already answered.
      bool progress = false;
      for (const auto& record : chained.answers) {
        bool duplicate = false;
        for (const auto& existing : response.answers) {
          duplicate = duplicate || (existing.name.equals(record.name) &&
                                    existing.type == record.type &&
                                    existing.rdata == record.rdata);
        }
        if (!duplicate) {
          response.answers.push_back(record);
          progress = true;
        }
      }
      if (!progress) break;
    }
  }
  return response;
}

Message RecursiveResolver::apply_hijack(const Message& query, Message response,
                                        double roll) const {
  if (!hijack_ || response.flags.rcode != Rcode::kNxDomain) return response;
  if (roll >= hijack_->probability) return response;
  if (metrics_ != nullptr) metrics_->add("resolver.nxdomain_rewrites");
  if (recorder_ != nullptr) {
    recorder_->violation(
        obs::Hop::kResolver, service_address_.to_string(), "rewrite-nxdomain",
        query.questions.front().name.to_string() + " -> " +
            hijack_->redirect_address.to_string(),
        clock_ == nullptr ? 0
                          : static_cast<std::uint64_t>(clock_->now().micros));
  }
  Message hijacked = Message::response_to(query, Rcode::kNoError);
  hijacked.flags.recursion_available = true;
  hijacked.answers.push_back(ResourceRecord::a(
      query.questions.front().name, hijack_->redirect_address, hijack_->ttl));
  return hijacked;
}

void AnycastResolverGroup::add_instance(std::shared_ptr<RecursiveResolver> instance) {
  instances_.push_back(std::move(instance));
}

RecursiveResolver& AnycastResolverGroup::instance_for(net::Ipv4Address client) {
  const std::uint64_t hash =
      util::fnv1a64(client.to_string() + '|' + name_);
  return *instances_[hash % instances_.size()];
}

void ResolverDirectory::add_resolver(std::shared_ptr<RecursiveResolver> resolver) {
  unicast_[resolver->service_address().value()] = std::move(resolver);
}

void ResolverDirectory::add_anycast(std::shared_ptr<AnycastResolverGroup> group) {
  anycast_[group->service_address().value()] = std::move(group);
}

RecursiveResolver* ResolverDirectory::instance_for(net::Ipv4Address resolver_address,
                                                   net::Ipv4Address client) {
  if (const auto it = anycast_.find(resolver_address.value()); it != anycast_.end()) {
    return &it->second->instance_for(client);
  }
  if (const auto it = unicast_.find(resolver_address.value()); it != unicast_.end()) {
    return it->second.get();
  }
  return nullptr;
}

Message ResolverDirectory::resolve_via(net::Ipv4Address resolver_address,
                                       net::Ipv4Address client, const Message& query,
                                       double hijack_roll) {
  RecursiveResolver* resolver = instance_for(resolver_address, client);
  if (resolver == nullptr) {
    return Message::response_to(query, Rcode::kServFail);
  }
  return resolver->resolve(query, hijack_roll);
}

}  // namespace tft::dns
