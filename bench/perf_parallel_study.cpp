// Wall-clock comparison of the study pipeline at --jobs 1 vs --jobs N,
// plus a byte-identity check on the rendered reports (the determinism
// contract: worker count never changes results).
//
// Usage: perf_parallel_study [scale] [target_nodes] [seed] [jobs]
//
// Also drops BENCH_parallel_study.json at the repo root: wall times for
// both legs, speedup, and the key observability counters of the run.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string_view>

#include "common.hpp"
#include "tft/obs/build_info.hpp"
#include "tft/util/json.hpp"
#include "tft/util/thread_pool.hpp"

#ifndef TFT_REPO_ROOT
#define TFT_REPO_ROOT "."
#endif

namespace {

std::string render_all(const tft::core::StudyResult& result) {
  std::string out = tft::core::render_coverage(result.coverage);
  out += "\n" + tft::core::render_dns_report(result.dns);
  out += "\n" + tft::core::render_http_report(result.http);
  out += "\n" + tft::core::render_https_report(result.https);
  out += "\n" + tft::core::render_monitor_report(result.monitoring);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const auto options = tft::bench::parse_options(argc, argv, 0.05);
  std::size_t jobs = tft::util::ThreadPool::default_workers();
  if (argc > 4) jobs = static_cast<std::size_t>(std::atoll(argv[4]));
  if (jobs < 2) jobs = 2;  // "parallel" leg must actually be parallel

  const auto spec = tft::world::paper_spec();
  auto config = tft::bench::study_config(options);

  std::cerr << "[bench] sequential study (jobs=1)...\n";
  config.jobs = 1;
  const auto sequential_start = Clock::now();
  const auto sequential = tft::core::run_study(spec, options.scale,
                                               options.seed, config);
  const double sequential_seconds =
      std::chrono::duration<double>(Clock::now() - sequential_start).count();

  std::cerr << "[bench] parallel study (jobs=" << jobs << ")...\n";
  config.jobs = jobs;
  const auto parallel_start = Clock::now();
  const auto parallel = tft::core::run_study(spec, options.scale,
                                             options.seed, config);
  const double parallel_seconds =
      std::chrono::duration<double>(Clock::now() - parallel_start).count();

  const std::string sequential_report = render_all(sequential);
  const std::string parallel_report = render_all(parallel);

  std::cout << "perf_parallel_study: scale=" << options.scale
            << " target=" << options.target_nodes << " seed=" << options.seed
            << "\n";
  std::cout << "  hardware threads: "
            << tft::util::ThreadPool::default_workers() << "\n";
  std::cout << "  jobs=1: " << sequential_seconds << " s\n";
  std::cout << "  jobs=" << jobs << ": " << parallel_seconds << " s\n";
  std::cout << "  speedup: "
            << (parallel_seconds > 0 ? sequential_seconds / parallel_seconds
                                     : 0)
            << "x\n";
  std::cout << "  reports byte-identical: "
            << (sequential_report == parallel_report ? "yes" : "NO") << "\n";

  // Machine-readable result file for trend tracking across commits.
  {
    tft::util::JsonWriter json;
    json.begin_object();
    tft::obs::write_build_info(json);
    json.field("bench", "parallel_study")
        .field("scale", options.scale)
        .field("target_nodes", static_cast<std::uint64_t>(options.target_nodes))
        .field("seed", options.seed)
        .field("jobs", static_cast<std::uint64_t>(jobs))
        .field("hardware_threads",
               static_cast<std::uint64_t>(tft::util::ThreadPool::default_workers()))
        .field("sequential_ms", sequential_seconds * 1000.0)
        .field("parallel_ms", parallel_seconds * 1000.0)
        .field("speedup",
               parallel_seconds > 0 ? sequential_seconds / parallel_seconds : 0)
        .field("reports_identical", sequential_report == parallel_report);
    json.begin_object("counters");
    for (const auto& [name, value] : parallel.metrics.counters()) {
      json.field(name, value);
    }
    json.end_object();
    // Load-balance profile of the parallel leg: wall ms per shard of every
    // sharded pass (keys are "<pass label>.<shard>"). A skewed profile
    // means one shard dominates the pass's critical path.
    json.begin_object("per_shard_ms");
    for (const auto& [name, value] : parallel.metrics.timing()) {
      constexpr std::string_view kPrefix = "shard_ms.";
      if (name.rfind(kPrefix, 0) == 0) {
        json.field(name.substr(kPrefix.size()), value);
      }
    }
    json.end_object();
    json.end_object();
    const std::string path = std::string(TFT_REPO_ROOT) + "/BENCH_parallel_study.json";
    std::ofstream file(path);
    if (file) {
      file << std::move(json).take() << "\n";
      std::cerr << "[bench] results written to " << path << "\n";
    } else {
      std::cerr << "[bench] warning: cannot write " << path << "\n";
    }
  }

  if (sequential_report != parallel_report) {
    std::cerr << "perf_parallel_study: DETERMINISM VIOLATION — jobs=1 and "
                 "jobs="
              << jobs << " reports differ\n";
    return 1;
  }
  return 0;
}
