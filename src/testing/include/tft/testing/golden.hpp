// Golden-scenario regression support: canonicalize a JSON report so that
// two runs of the study pipeline can be compared byte-for-byte, and diff
// the result against a checked-in snapshot.
//
// Canonical form: parse, strip run-varying sections (the `build` provenance
// stamp and every `timing` section — the same data `--metrics-omit-timing`
// drops), then re-emit with sorted object keys, 2-space indentation, and
// stable number formatting. Canonicalization is idempotent.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tft/util/json_parse.hpp"
#include "tft/util/result.hpp"

namespace tft::testing {

/// Keys stripped from every object level by default: `build` (git describe
/// changes every commit) and `timing` (wall-clock, varies run to run).
const std::vector<std::string>& default_stripped_keys();

/// Canonicalize a JSON document: strip `stripped_keys` recursively, emit
/// sorted keys and stable formatting. Errors on malformed JSON.
util::Result<std::string> canonicalize_json(
    std::string_view text,
    const std::vector<std::string>& stripped_keys = default_stripped_keys());

/// Canonical text for an already-parsed value (no stripping).
std::string canonical_json_text(const util::JsonValue& value);

/// First point of divergence between two texts, rendered with line/column
/// and a short context excerpt from both sides ("" when equal).
std::string first_difference(std::string_view expected, std::string_view actual);

struct GoldenOutcome {
  bool matched = false;
  bool snapshot_missing = false;
  std::string diff;  // human-readable first divergence when !matched
};

/// Compare canonical `actual` against the snapshot file at `path`.
GoldenOutcome check_golden(const std::string& path, std::string_view actual);

/// Overwrite the snapshot at `path` (parent directories created).
util::Result<void> update_golden(const std::string& path, std::string_view actual);

}  // namespace tft::testing
