// libFuzzer entry point for the trace_codec target (see src/testing/fuzz.cpp
// for the decoder this exercises). Build with -DTFT_FUZZ=ON.
#include <cstddef>
#include <cstdint>

#include "tft/testing/fuzz.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return tft::testing::fuzz_one("trace_codec", data, size);
}
