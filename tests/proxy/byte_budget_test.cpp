// §3.4 ethics guardrail: per-exit-node byte budgets. The paper never
// downloaded more than 1 MB through any node; the overlay model enforces
// the same cap and the study-level test checks compliance end to end.
#include <gtest/gtest.h>

#include "tft/core/study.hpp"
#include "tft/world/world.hpp"

namespace tft::proxy {
namespace {

class ByteBudgetTest : public ::testing::Test {
 protected:
  ByteBudgetTest() {
    auto zone = std::make_shared<dns::AuthoritativeServer>(*dns::DnsName::parse("z.net"));
    zone->add_wildcard_a(*dns::DnsName::parse("z.net"), web_address_);
    authorities_.register_zone(std::move(zone));
    auto google = std::make_shared<dns::AnycastResolverGroup>(
        net::Ipv4Address(8, 8, 8, 8), "google");
    google->add_instance(std::make_shared<dns::RecursiveResolver>(
        net::Ipv4Address(8, 8, 8, 8), net::Ipv4Address(74, 125, 1, 1), &authorities_,
        &clock_));
    resolvers_.add_anycast(std::move(google));
    auto server = std::make_shared<http::OriginServer>("w");
    server->set_default_handler([](const http::Request&) {
      return http::Response::make(200, "OK", std::string(1000, 'x'));  // 1 KB bodies
    });
    web_.add(web_address_, std::move(server));
    environment_ = Environment{&resolvers_, &web_, &tls_, &smtp_, &clock_, &topology_};
  }

  SuperProxy make_proxy(std::size_t budget) {
    SuperProxy::Config config;
    config.per_node_byte_budget = budget;
    SuperProxy proxy(config, environment_);
    ExitNodeAgent::Config node;
    node.zid = "only-node";
    node.address = net::Ipv4Address(203, 0, 113, 1);
    node.country = "US";
    node.dns_resolver = net::Ipv4Address(8, 8, 8, 8);
    proxy.add_exit_node(std::make_shared<ExitNodeAgent>(std::move(node), environment_));
    return proxy;
  }

  http::Url url(int i) {
    return *http::Url::parse("http://h" + std::to_string(i) + ".z.net/");
  }

  net::Ipv4Address web_address_{198, 51, 100, 10};
  sim::EventQueue clock_;
  net::AsOrgDb topology_;
  dns::AuthorityRegistry authorities_;
  dns::ResolverDirectory resolvers_;
  http::WebServerRegistry web_;
  tls::TlsEndpointRegistry tls_;
  smtp::SmtpServerRegistry smtp_;
  Environment environment_;
};

TEST_F(ByteBudgetTest, AccountsBytesPerNode) {
  SuperProxy proxy = make_proxy(0);  // accounting only, no enforcement
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(proxy.fetch(url(i), {}).ok());
  }
  EXPECT_EQ(proxy.bytes_served("only-node"), 5000u);
  EXPECT_EQ(proxy.max_bytes_served(), 5000u);
  EXPECT_EQ(proxy.bytes_served("nobody"), 0u);
  EXPECT_EQ(proxy.budget_exhausted_nodes(), 0u);
}

TEST_F(ByteBudgetTest, ExhaustedNodesAreSpared) {
  SuperProxy proxy = make_proxy(2500);  // allows ~3 fetches of 1 KB
  int served = 0;
  for (int i = 0; i < 10; ++i) {
    if (proxy.fetch(url(i), {}).ok()) ++served;
  }
  EXPECT_EQ(served, 3);  // 3 KB served, then the only node is off-limits
  EXPECT_EQ(proxy.budget_exhausted_nodes(), 1u);
  EXPECT_GE(proxy.bytes_served("only-node"), 2500u);
  EXPECT_LE(proxy.bytes_served("only-node"), 3000u);
}

TEST_F(ByteBudgetTest, PinnedSessionAlsoStops) {
  SuperProxy proxy = make_proxy(1500);
  RequestOptions options;
  options.session = "pinned";
  ASSERT_TRUE(proxy.fetch(url(0), options).ok());
  ASSERT_TRUE(proxy.fetch(url(1), options).ok());  // crosses the budget
  // The pinned node is exhausted; with no alternatives the fetch fails
  // rather than keep loading the node.
  EXPECT_FALSE(proxy.fetch(url(2), options).ok());
}

TEST(StudyComplianceTest, FullStudyStaysUnderOneMegabytePerNode) {
  // End-to-end §3.4 compliance: after all four experiments, no exit node
  // served more than the paper's 1 MB cap.
  auto world = world::build_world(world::mini_spec(), 1.0, 606);
  auto config = core::StudyConfig::for_scale(1.0, 0);
  config.dns.target_nodes = 0;
  config.http.max_nodes = 2000;
  config.https.target_nodes = 2000;
  config.monitoring.target_nodes = 0;
  core::run_study(*world, config);

  EXPECT_GT(world->luminati->max_bytes_served(), 0u);
  EXPECT_LE(world->luminati->max_bytes_served(), 1024u * 1024u);
  EXPECT_EQ(world->luminati->budget_exhausted_nodes(), 0u);
}

}  // namespace
}  // namespace tft::proxy
