// Authoritative DNS server for a zone. Supports exact records, wildcard A
// records (needed for the per-exit-node unique probe domains of §7), and a
// source-address-conditional policy hook (the d2 trick of §4.1: answer with
// an A record only when the query comes from Google's resolver netblock,
// NXDOMAIN otherwise). Every query is logged with its source address and
// timestamp — the measurement pipeline reads this log exactly as the paper
// reads its authoritative server's logs.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tft/dns/message.hpp"
#include "tft/net/ipv4.hpp"
#include "tft/sim/time.hpp"

namespace tft::dns {

class AuthoritativeServer {
 public:
  /// `origin` is the zone apex; queries outside the zone are REFUSED.
  explicit AuthoritativeServer(DnsName origin) : origin_(std::move(origin)) {}

  const DnsName& origin() const noexcept { return origin_; }

  void add_record(ResourceRecord record);
  void add_a(const DnsName& name, net::Ipv4Address address, std::uint32_t ttl = 300);

  /// Wildcard: any not-otherwise-matched name under `suffix` resolves to
  /// `address`. Later wildcards win on more-specific suffixes.
  void add_wildcard_a(const DnsName& suffix, net::Ipv4Address address,
                      std::uint32_t ttl = 300);

  /// Override hook consulted before normal lookup. Return a full response
  /// to short-circuit, or nullopt to fall through.
  using Policy = std::function<std::optional<Message>(
      const Question& question, net::Ipv4Address source, const Message& query)>;
  void set_policy(Policy policy) { policy_ = std::move(policy); }

  /// Answer a query arriving from `source` at simulated time `now`.
  Message handle(const Message& query, net::Ipv4Address source, sim::Instant now);

  struct QueryLogEntry {
    sim::Instant time;
    net::Ipv4Address source;
    DnsName name;
    RecordType type = RecordType::kA;
  };
  const std::vector<QueryLogEntry>& query_log() const noexcept { return query_log_; }
  void clear_query_log() { query_log_.clear(); }

 private:
  struct Wildcard {
    DnsName suffix;
    net::Ipv4Address address;
    std::uint32_t ttl;
  };

  DnsName origin_;
  // canonical name -> records at that name (all types)
  std::unordered_map<std::string, std::vector<ResourceRecord>> records_;
  std::vector<Wildcard> wildcards_;
  Policy policy_;
  std::vector<QueryLogEntry> query_log_;
};

}  // namespace tft::dns
