// §4: NXDOMAIN hijacking measurement and attribution.
//
// Methodology (§4.1): for each exit node, fetch http://d1 with remote DNS to
// learn (exit IP, DNS server egress, zID) from our server logs, then fetch
// http://d2 — a name our authoritative server answers only for the super
// proxy's DNS instance — through the same session. A clean node surfaces the
// NXDOMAIN in the proxy log; a hijacked node returns somebody's ad page.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tft/util/stream_rng.hpp"
#include "tft/world/world.hpp"

namespace tft::core {

struct DnsProbeConfig {
  /// Stop after this many unique exit nodes (0 = crawl to exhaustion).
  std::size_t target_nodes = 5000;
  /// Give up after this many consecutive sessions without a new node.
  std::size_t stall_limit = 3000;
  std::uint64_t seed = 0x7F7;
  /// Worker threads for the post-crawl attribution pass. Results are
  /// byte-identical for every value (see util::parallel_for_shards).
  std::size_t jobs = 1;

  /// How the d2 policy recognizes the super proxy's pre-check (§4.1).
  /// The paper whitelisted all of 74.125.0.0/16 ("empirically determined");
  /// whitelisting only the specific anycast instance the super proxy uses
  /// keeps more Google-DNS nodes measurable (see the footnote-8 ablation).
  enum class GoogleWhitelist {
    kSuperProxyInstance,  // precise: only the instance's egress address
    kWholeNetblock,       // the paper's setup: all of 74.125.0.0/16
  };
  GoogleWhitelist google_whitelist = GoogleWhitelist::kSuperProxyInstance;
};

struct DnsNodeObservation {
  /// Flight-recorder transaction behind this observation (0 when the world
  /// has no recorder). Stable across --jobs and probe composition: derived
  /// from the probe's own country stream key and session counter.
  std::uint64_t txn_id = 0;
  std::string zid;
  net::Ipv4Address exit_address;
  net::Asn asn = 0;
  net::CountryCode country;
  net::Ipv4Address dns_server;  // resolver egress seen at our authoritative
  /// Node shares the super proxy's anycast DNS instance; unmeasurable
  /// (footnote 8) and excluded from analysis.
  bool filtered_google_overlap = false;
  bool hijacked = false;
  std::string hijack_content;  // body served instead of the NXDOMAIN error
};

class DnsHijackProbe {
 public:
  DnsHijackProbe(world::World& world, DnsProbeConfig config);

  /// Crawl exit nodes and measure each once. Returns observation count.
  std::size_t run();

  const std::vector<DnsNodeObservation>& observations() const noexcept {
    return observations_;
  }
  std::size_t sessions_issued() const noexcept { return sessions_issued_; }

  /// Key of the probe's country-sampling stream. One counter step is
  /// consumed per session, so (key, sessions_issued()) checkpoints the
  /// sampler exactly (the longitudinal study serializes this).
  util::StreamKey country_stream_key() const;

 private:
  world::World& world_;
  DnsProbeConfig config_;
  std::vector<DnsNodeObservation> observations_;
  std::size_t sessions_issued_ = 0;
};

// --- Analysis (§4.2-§4.4) ----------------------------------------------------

struct DnsAnalysisConfig {
  std::size_t min_nodes_per_country = 100;
  std::size_t min_nodes_per_server = 10;
  double hijack_rate_threshold = 0.90;
  /// A server used from more than this many countries is "public" (§4.3.2).
  std::size_t public_country_threshold = 2;
  std::size_t min_nodes_per_url = 5;
  /// Host-software heuristic (§4.3.3): a landing URL seen across at least
  /// this many ASes is software, not an ISP.
  std::size_t host_software_as_threshold = 5;
};

struct DnsCountryRow {
  net::CountryCode country;
  std::size_t hijacked = 0;
  std::size_t total = 0;
  double ratio() const { return total == 0 ? 0 : static_cast<double>(hijacked) / total; }
};

struct DnsIspRow {  // Table 4
  std::string isp;
  net::CountryCode country;
  std::size_t dns_servers = 0;
  std::size_t nodes = 0;
};

struct DnsPublicRow {  // §4.3.2
  std::string operator_name;  // "(unidentified)" when the org is unknown
  std::size_t servers = 0;
  std::size_t nodes = 0;
};

struct DnsGoogleUrlRow {  // Table 5
  std::string host;
  std::size_t nodes = 0;
  std::size_t ases = 0;
  std::size_t countries = 0;
  bool likely_host_software = false;
};

/// §4.3.1: several ISPs serve byte-identical hijack JavaScript (differing
/// only in the landing URL) — evidence of a shared vendor appliance. A
/// cluster groups ISPs whose hijack pages have the same URL-stripped shape.
struct SharedVendorCluster {
  std::vector<std::string> isps;  // distinct ISPs serving this code shape
  std::size_t nodes = 0;
  std::uint64_t shape_hash = 0;
};

/// Normalize hijack-page content for vendor clustering: every embedded URL
/// is replaced by a placeholder, so pages identical up to the landing URL
/// collapse to the same shape.
std::uint64_t content_shape_hash(std::string_view html);

struct DnsReport {
  std::size_t total_nodes = 0;
  std::size_t filtered_nodes = 0;
  std::size_t hijacked_nodes = 0;
  std::size_t unique_dns_servers = 0;
  std::size_t unique_ases = 0;
  std::size_t unique_countries = 0;

  std::vector<DnsCountryRow> top_countries;  // Table 3 (sorted by ratio)
  std::vector<DnsIspRow> isp_hijackers;      // Table 4
  std::size_t isp_server_total = 0;          // ISP-attributed servers seen
  std::vector<DnsPublicRow> public_hijackers;
  std::size_t public_server_total = 0;       // public servers seen (>=10 nodes)
  std::vector<DnsGoogleUrlRow> google_urls;  // Table 5
  std::size_t google_hijacked_nodes = 0;     // hijacked despite Google DNS
  /// Hijack-page code shapes shared across >=2 ISPs (§4.3.1's common
  /// hardware/software vendor finding).
  std::vector<SharedVendorCluster> shared_vendor_clusters;

  // §4.2 macroscopic spread (over groups with enough samples):
  // "only 262 (40%) ASes and 15 (10%) countries [have] no exit nodes that
  // [experience] hijacking ... in 20 ASes, more than one-third of exit
  // nodes experience it."
  std::size_t sampled_ases = 0;            // ASes meeting the sample threshold
  std::size_t clean_ases = 0;              // of those, with zero hijacked nodes
  std::size_t heavily_hijacked_ases = 0;   // of those, with > 1/3 hijacked
  std::size_t sampled_countries = 0;
  std::size_t clean_countries = 0;

  // §4.4 attribution split (fractions of hijacked nodes).
  double attributed_isp = 0;
  double attributed_public = 0;
  double attributed_other = 0;

  /// Evidence chains: violation category -> flight-recorder txn ids of every
  /// observation counted under it (rendered as "0x…" refs in report_json).
  std::map<std::string, std::vector<std::uint64_t>> evidence;

  double hijack_ratio() const {
    const std::size_t measurable = total_nodes - filtered_nodes;
    return measurable == 0 ? 0 : static_cast<double>(hijacked_nodes) / measurable;
  }
};

DnsReport analyze_dns(const world::World& world,
                      const std::vector<DnsNodeObservation>& observations,
                      const DnsAnalysisConfig& config);

}  // namespace tft::core
