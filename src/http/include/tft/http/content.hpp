// Reference content corpus (§5.1 of the paper: a 9 KB HTML page, a 39 KB
// JPEG, a 258 KB un-minified JavaScript library, a 3 KB un-minified CSS
// file), a synthetic image format that stands in for JPEG, and the URL
// scanner used by the hijack/injection analyses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tft/util/result.hpp"

namespace tft::http {

enum class ContentKind {
  kHtml,
  kImage,
  kJavaScript,
  kCss,
};

std::string_view to_string(ContentKind kind) noexcept;
std::string_view content_type(ContentKind kind) noexcept;

/// Deterministic reference objects matching the paper's sizes.
/// Repeated calls return byte-identical content for the same seed.
std::string reference_html(std::size_t target_bytes = 9 * 1024, std::uint64_t seed = 1);
std::string reference_javascript(std::size_t target_bytes = 258 * 1024,
                                 std::uint64_t seed = 2);
std::string reference_css(std::size_t target_bytes = 3 * 1024, std::uint64_t seed = 3);
std::string reference_image(std::size_t target_bytes = 39 * 1024, std::uint64_t seed = 4);

// --- SIMG: the synthetic image format -------------------------------------
// Layout: "SIMG" magic, u16 width, u16 height, u8 quality (1..100),
// u32 payload length, payload bytes. Transcoding to quality q' scales the
// payload proportionally (q'/q), which is the size-level behaviour Table 7
// measures.

struct SimgInfo {
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::uint8_t quality = 100;
  std::uint32_t payload_bytes = 0;

  std::size_t total_bytes() const { return 4 + 2 + 2 + 1 + 4 + payload_bytes; }
};

std::string make_simg(std::uint16_t width, std::uint16_t height, std::uint8_t quality,
                      std::uint32_t payload_bytes, std::uint64_t seed);

util::Result<SimgInfo> parse_simg(std::string_view bytes);

/// Re-encode at `new_quality` (1..100). Lowering quality shrinks the payload
/// proportionally; raising it is clamped to the original size (a transcoder
/// cannot add information).
util::Result<std::string> transcode_simg(std::string_view bytes, std::uint8_t new_quality);

/// Observed compression ratio: modified size / original size, in (0, inf).
double compression_ratio(std::string_view original, std::string_view modified);

// --- Analysis helpers ------------------------------------------------------

/// Extract http(s) URLs embedded anywhere in content (HTML attributes,
/// JavaScript strings, free text). Returns each URL once, in first-seen
/// order.
std::vector<std::string> extract_urls(std::string_view content);

/// Just the host ("registrable" string up to the first '/' or quote) of
/// each extracted URL, deduplicated, first-seen order.
std::vector<std::string> extract_url_hosts(std::string_view content);

}  // namespace tft::http
