#include "tft/util/bytes.hpp"

#include <gtest/gtest.h>

namespace tft::util {
namespace {

TEST(BytesTest, RoundTripIntegers) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0x1234);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0102030405060708ULL);

  ByteReader reader(writer.data());
  EXPECT_EQ(*reader.u8(), 0xAB);
  EXPECT_EQ(*reader.u16(), 0x1234);
  EXPECT_EQ(*reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(reader.at_end());
}

TEST(BytesTest, BigEndianLayout) {
  ByteWriter writer;
  writer.u16(0x0102);
  EXPECT_EQ(writer.data()[0], 0x01);
  EXPECT_EQ(writer.data()[1], 0x02);
}

TEST(BytesTest, ReadPastEndFails) {
  ByteReader reader(std::string_view("\x01", 1));
  EXPECT_TRUE(reader.u8().ok());
  auto r = reader.u8();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kOutOfRange);
}

TEST(BytesTest, U16PastEndFails) {
  ByteReader reader(std::string_view("\x01", 1));
  EXPECT_FALSE(reader.u16().ok());
}

TEST(BytesTest, BytesAndSeek) {
  ByteWriter writer;
  writer.bytes("hello");
  ByteReader reader(writer.data());
  EXPECT_EQ(*reader.bytes(2), "he");
  ASSERT_TRUE(reader.seek(0).ok());
  EXPECT_EQ(*reader.bytes(5), "hello");
  EXPECT_FALSE(reader.bytes(1).ok());
  EXPECT_FALSE(reader.seek(6).ok());
  EXPECT_TRUE(reader.seek(5).ok());
}

TEST(BytesTest, PatchU16) {
  ByteWriter writer;
  writer.u16(0);
  writer.u8(0x7F);
  writer.patch_u16(0, 0xBEEF);
  ByteReader reader(writer.data());
  EXPECT_EQ(*reader.u16(), 0xBEEF);
  EXPECT_EQ(*reader.u8(), 0x7F);
}

}  // namespace
}  // namespace tft::util
