#include <gtest/gtest.h>

#include "tft/http/content.hpp"
#include "tft/http/message.hpp"

namespace tft::http {
namespace {

TEST(ChunkedTest, EncodeSmallPayload) {
  EXPECT_EQ(encode_chunked_body("hello", 4096), "5\r\nhello\r\n0\r\n\r\n");
  EXPECT_EQ(encode_chunked_body("", 4096), "0\r\n\r\n");
}

TEST(ChunkedTest, EncodeSplitsAtChunkSize) {
  const std::string wire = encode_chunked_body("abcdefgh", 3);
  EXPECT_EQ(wire, "3\r\nabc\r\n3\r\ndef\r\n2\r\ngh\r\n0\r\n\r\n");
}

TEST(ChunkedTest, DecodeRoundTrip) {
  const std::string payload = reference_html();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{1024}, std::size_t{100000}}) {
    const auto decoded = decode_chunked_body(encode_chunked_body(payload, chunk));
    ASSERT_TRUE(decoded.ok()) << chunk;
    EXPECT_EQ(*decoded, payload) << chunk;
  }
}

TEST(ChunkedTest, DecodeHexSizesAndExtensions) {
  EXPECT_EQ(*decode_chunked_body("A\r\n0123456789\r\n0\r\n\r\n"), "0123456789");
  EXPECT_EQ(*decode_chunked_body("5;ext=1\r\nhello\r\n0\r\n\r\n"), "hello");
}

TEST(ChunkedTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(decode_chunked_body("").ok());
  EXPECT_FALSE(decode_chunked_body("zz\r\nxx\r\n0\r\n\r\n").ok());   // bad size
  EXPECT_FALSE(decode_chunked_body("5\r\nhell\r\n0\r\n\r\n").ok());  // short data
  EXPECT_FALSE(decode_chunked_body("5\r\nhelloXX0\r\n\r\n").ok());   // missing CRLF
  EXPECT_FALSE(decode_chunked_body("5\r\nhello\r\n").ok());          // no terminator
  EXPECT_FALSE(decode_chunked_body("5\r\nhello\r\n0\r\nX: y\r\n\r\n").ok());  // trailer
  EXPECT_FALSE(decode_chunked_body("\r\nhello\r\n0\r\n\r\n").ok());  // empty size
}

TEST(ChunkedTest, ResponseSerializeChunkedParsesBack) {
  Response response = Response::make(200, "OK", reference_css(), "text/css");
  response.headers.add("X-Test", "1");
  const std::string wire = response.serialize_chunked(100);
  EXPECT_NE(wire.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);

  const auto parsed = Response::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->body, response.body);
  EXPECT_EQ(parsed->headers.get("X-Test"), "1");
  // The parser normalizes back to identity framing.
  EXPECT_FALSE(parsed->headers.has("Transfer-Encoding"));
  EXPECT_EQ(parsed->headers.get("Content-Length"),
            std::to_string(response.body.size()));
}

TEST(ChunkedTest, ChunkedBodyContainingBlankLines) {
  // Chunk data containing CRLFCRLF must not confuse the framing.
  Response response = Response::make(200, "OK", "a\r\n\r\nb", "text/plain");
  const auto parsed = Response::parse(response.serialize_chunked(2));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body, "a\r\n\r\nb");
}

TEST(ChunkedTest, HugeChunkSizeRejectedNotCrashed) {
  // Regression (found by the fuzz harness): a declared chunk size near
  // SIZE_MAX made `chunk_length + 2` wrap past the truncation check, and
  // the substr calls below it threw std::out_of_range. The decoder must
  // return a clean error for every huge declared size.
  EXPECT_FALSE(decode_chunked_body("fffffffffffffffe\r\nxx\r\n0\r\n\r\n").ok());
  EXPECT_FALSE(decode_chunked_body("ffffffffffffffff\r\nxx\r\n0\r\n\r\n").ok());
  EXPECT_FALSE(decode_chunked_body("7fffffffffffffff\r\nxx\r\n0\r\n\r\n").ok());
  // Through the full response parser, as the fuzzer hit it.
  EXPECT_FALSE(Response::parse("HTTP/1.1 200 OK\r\n"
                               "Transfer-Encoding: chunked\r\n\r\n"
                               "fffffffffffffffe\r\nxx\r\n")
                   .ok());
  // A size whose hex digits overflow size_t entirely is rejected too.
  EXPECT_FALSE(decode_chunked_body("11112222333344445\r\nxx\r\n0\r\n\r\n").ok());
}

TEST(ChunkedTest, TruncatedChunkedResponseRejected) {
  Response response = Response::make(200, "OK", reference_css(), "text/css");
  std::string wire = response.serialize_chunked(64);
  wire.resize(wire.size() - 4);
  EXPECT_FALSE(Response::parse(wire).ok());
}

}  // namespace
}  // namespace tft::http
