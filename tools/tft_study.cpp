// tft-study: command-line front end for the measurement pipeline.
//
//   tft-study [--experiment dns|http|https|monitor|smtp|all]
//             [--scale 0.05] [--seed 2016] [--target 100000]
//             [--mini] [--vpn-overlay] [--out report.txt] [--quiet]
//
// Builds the paper-scale world (or the small --mini scenario), runs the
// requested experiment(s), and writes the paper-style report to stdout or
// --out.
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

#include "tft/core/report_json.hpp"
#include "tft/core/smtp_probe.hpp"
#include "tft/core/study.hpp"
#include "tft/util/flags.hpp"
#include "tft/util/thread_pool.hpp"
#include "tft/world/spec_io.hpp"
#include "tft/world/world.hpp"

namespace {

constexpr const char* kUsage = R"(tft-study: end-to-end violation measurement (Chung et al., IMC'16)

Flags:
  --experiment <dns|http|https|monitor|smtp|all>   what to run (default: all)
  --scale <f>        population scale vs. the paper's 750K nodes (default 0.05)
  --seed <n>         world + crawl seed (default 2016)
  --target <n>       max unique exit nodes per experiment (default: exhaustive)
  --jobs <n>         worker threads (default: one per hardware thread;
                     1 = fully sequential). Reports are byte-identical for
                     every value
  --mini             use the small test scenario instead of the paper world
  --spec <path>      load the scenario from a JSON file (see --dump-spec)
  --dump-spec        print the selected scenario as JSON and exit
  --vpn-overlay      allow arbitrary ports (required for --experiment smtp)
  --json             emit machine-readable JSON instead of tables
  --out <path>       write the report to a file instead of stdout
  --quiet            suppress progress on stderr
  --help             this text
)";

int fail(const std::string& message) {
  std::cerr << "tft-study: " << message << "\n" << kUsage;
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using tft::util::Flags;
  const auto parsed = Flags::parse(
      argc, argv, {"mini", "vpn-overlay", "quiet", "json", "dump-spec", "help"});
  if (!parsed.ok()) return fail(parsed.error().to_string());
  const Flags& flags = *parsed;

  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto unknown = flags.unknown(
      {"experiment", "scale", "seed", "target", "jobs", "mini", "vpn-overlay",
       "out", "quiet", "json", "spec", "dump-spec"});
  if (!unknown.empty()) return fail("unknown flag --" + unknown.front());

  // The mini scenario and user scenario files describe their own
  // populations; scale them 1:1 unless overridden. The paper world
  // defaults to a laptop-friendly 0.05.
  const double default_scale =
      (flags.get_bool("mini") || flags.has("spec")) ? 1.0 : 0.05;
  const auto scale = flags.get_double("scale", default_scale);
  if (!scale.ok()) return fail(scale.error().to_string());
  const auto seed = flags.get_int("seed", 2016);
  if (!seed.ok()) return fail(seed.error().to_string());
  const auto target = flags.get_int("target", 0);
  if (!target.ok()) return fail(target.error().to_string());
  const auto jobs_flag = flags.get_int("jobs", 0);
  if (!jobs_flag.ok()) return fail(jobs_flag.error().to_string());
  if (*jobs_flag < 0) return fail("--jobs must be >= 0");
  const std::size_t jobs = *jobs_flag == 0
                               ? tft::util::ThreadPool::default_workers()
                               : static_cast<std::size_t>(*jobs_flag);
  const std::string experiment = flags.get_or("experiment", "all");
  const bool quiet = flags.get_bool("quiet");
  const bool json = flags.get_bool("json");

  auto spec = flags.get_bool("mini") ? tft::world::mini_spec()
                                     : tft::world::paper_spec();
  if (const auto spec_path = flags.get("spec")) {
    std::ifstream file(*spec_path);
    if (!file) return fail("cannot read scenario file " + *spec_path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    auto loaded = tft::world::spec_from_json(buffer.str());
    if (!loaded.ok()) {
      return fail("bad scenario file: " + loaded.error().to_string());
    }
    spec = *std::move(loaded);
  }
  if (flags.get_bool("vpn-overlay")) spec.arbitrary_port_overlay = true;
  if (flags.get_bool("dump-spec")) {
    std::cout << tft::world::spec_to_json(spec) << "\n";
    return 0;
  }
  if ((experiment == "smtp" || experiment == "all") &&
      !spec.arbitrary_port_overlay && experiment == "smtp") {
    return fail("--experiment smtp requires --vpn-overlay (Luminati-like "
                "overlays tunnel port 443 only)");
  }

  const std::size_t target_nodes =
      *target > 0 ? static_cast<std::size_t>(*target) : (1u << 22);
  auto config = tft::core::StudyConfig::for_scale(*scale, target_nodes);
  config.jobs = jobs;
  config.dns.jobs = jobs;
  config.http.jobs = jobs;
  config.https.jobs = jobs;
  config.monitoring.jobs = jobs;
  const auto world_seed = static_cast<std::uint64_t>(*seed);

  std::vector<std::string> experiments;
  if (experiment == "all") {
    experiments = {"dns", "http", "https", "monitor", "smtp"};
  } else {
    experiments = {experiment};
  }
  for (const auto& name : experiments) {
    if (name != "dns" && name != "http" && name != "https" &&
        name != "monitor" && name != "smtp") {
      return fail("unknown experiment '" + name + "'");
    }
  }

  std::mutex progress_mutex;
  const auto progress = [&](const std::string& line) {
    if (quiet) return;
    const std::lock_guard<std::mutex> lock(progress_mutex);
    std::cerr << line << "\n";
  };

  // Every experiment builds its own world from the identical (spec, scale,
  // seed) triple, so the crawls cannot interact through shared proxy state
  // and the report is byte-identical for every --jobs value.
  const auto run_named = [&](const std::string& name) -> std::string {
    if (name == "smtp" && !spec.arbitrary_port_overlay) {
      return "SMTP experiment skipped: overlay tunnels port 443 only "
             "(pass --vpn-overlay).\n";
    }
    progress("[" + name + "] building world (scale=" +
             std::to_string(*scale) + ")...");
    auto world = tft::world::build_world(spec, *scale, world_seed);
    progress("[" + name + "] population: " +
             std::to_string(world->luminati->node_count()) + " exit nodes, " +
             std::to_string(world->topology.as_count()) + " ASes; running...");
    if (name == "dns") {
      tft::core::DnsHijackProbe probe(*world, config.dns);
      probe.run();
      const auto analyzed =
          tft::core::analyze_dns(*world, probe.observations(), config.dns_analysis);
      return json ? tft::core::dns_report_json(analyzed)
                  : tft::core::render_dns_report(analyzed);
    }
    if (name == "http") {
      tft::core::HttpModificationProbe probe(*world, config.http);
      probe.run();
      const auto analyzed = tft::core::analyze_http(
          *world, probe.observations(), config.http_analysis);
      return json ? tft::core::http_report_json(analyzed)
                  : tft::core::render_http_report(analyzed);
    }
    if (name == "https") {
      tft::core::CertReplacementProbe probe(*world, config.https);
      probe.run();
      const auto analyzed = tft::core::analyze_https(
          *world, probe.observations(), config.https_analysis);
      return json ? tft::core::https_report_json(analyzed)
                  : tft::core::render_https_report(analyzed);
    }
    if (name == "monitor") {
      tft::core::ContentMonitorProbe probe(*world, config.monitoring);
      probe.run();
      const auto analyzed = tft::core::analyze_monitoring(
          *world, probe.observations(), config.monitoring_analysis);
      return json ? tft::core::monitor_report_json(analyzed)
                  : tft::core::render_monitor_report(analyzed);
    }
    tft::core::SmtpProbeConfig smtp_config;
    smtp_config.target_nodes = target_nodes;
    tft::core::SmtpProbe probe(*world, smtp_config);
    probe.run();
    tft::core::SmtpAnalysisConfig analysis;
    analysis.min_nodes_per_as =
        std::max<std::size_t>(3, static_cast<std::size_t>(10 * *scale));
    const auto analyzed =
        tft::core::analyze_smtp(*world, probe.observations(), analysis);
    return json ? tft::core::smtp_report_json(analyzed)
                : tft::core::render_smtp_report(analyzed);
  };

  // Sections are merged in experiment order no matter which worker finishes
  // first.
  std::vector<std::string> sections(experiments.size());
  if (jobs <= 1 || experiments.size() == 1) {
    for (std::size_t i = 0; i < experiments.size(); ++i) {
      sections[i] = run_named(experiments[i]);
    }
  } else {
    tft::util::ThreadPool pool(jobs);
    std::vector<std::future<std::string>> futures;
    futures.reserve(experiments.size());
    for (const auto& name : experiments) {
      futures.push_back(
          pool.submit([&run_named, name] { return run_named(name); }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      sections[i] = futures[i].get();
    }
  }

  std::string report;
  for (const auto& section : sections) {
    report += section;
    if (experiments.size() > 1) report += "\n";
  }

  if (const auto out = flags.get("out")) {
    std::ofstream file(*out);
    if (!file) return fail("cannot open " + *out + " for writing");
    file << report;
    if (!quiet) std::cerr << "report written to " << *out << "\n";
  } else {
    std::cout << report;
  }
  return 0;
}
