// Interception framework. Everything that violates end-to-end connectivity
// in the simulation — ISP middleboxes, end-host software (anti-virus,
// malware), transparent proxies — is expressed as an interceptor attached
// to an exit node's path or host. The same classes model both locations;
// *where* an interceptor is attached is what the paper's attribution
// analysis tries to recover.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tft/http/message.hpp"
#include "tft/http/server.hpp"
#include "tft/net/ipv4.hpp"
#include "tft/sim/event_queue.hpp"
#include "tft/util/rng.hpp"

namespace tft::obs {
class Recorder;
class Registry;
}

namespace tft::middlebox {

/// Shared state threaded through an intercepted fetch.
struct FetchContext {
  net::Ipv4Address client_address;   // the exit node
  net::Ipv4Address destination;      // origin server
  sim::EventQueue* clock = nullptr;
  util::Rng* rng = nullptr;
  const http::WebServerRegistry* web = nullptr;
  /// Observability sink (the owning world's registry); interceptors count
  /// the violations they actually apply here. May be null in unit tests.
  obs::Registry* metrics = nullptr;
  /// Flight recorder (the owning world's). An interceptor that fires
  /// appends a hop event naming itself to the currently open transaction,
  /// so forensics can name the exact box that rewrote the bytes. May be
  /// null in unit tests.
  obs::Recorder* recorder = nullptr;
  /// Accumulated delay before the client's request reaches the origin
  /// (Bluecoat-style "scan first, forward later" middleboxes add to this).
  sim::Duration request_hold{0};
};

/// Base interface for HTTP-layer interception.
class HttpInterceptor {
 public:
  virtual ~HttpInterceptor() = default;

  virtual std::string_view name() const = 0;

  /// Inspect/react to a request before it is forwarded. Returning a
  /// response short-circuits the fetch (block pages).
  virtual std::optional<http::Response> before_request(const http::Request& request,
                                                       FetchContext& context) {
    (void)request;
    (void)context;
    return std::nullopt;
  }

  /// Transform the origin's response on its way back to the client.
  virtual http::Response after_response(const http::Request& request,
                                        http::Response response,
                                        FetchContext& context) {
    (void)request;
    (void)context;
    return response;
  }
};

using HttpInterceptorList = std::vector<std::shared_ptr<HttpInterceptor>>;

/// Run a fetch through an interceptor chain: before_request hooks in order
/// (first short-circuit wins), then the origin fetch (delayed by any
/// accumulated hold), then after_response hooks in reverse order.
http::Response intercepted_fetch(const HttpInterceptorList& chain,
                                 const http::Request& request, FetchContext& context);

}  // namespace tft::middlebox
