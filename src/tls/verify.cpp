#include "tft/tls/verify.hpp"

namespace tft::tls {

void RootStore::add(const Certificate& root) {
  fingerprints_.insert(root.fingerprint());
  keys_.insert(root.public_key);
}

bool RootStore::trusts(const Certificate& certificate) const {
  return fingerprints_.contains(certificate.fingerprint());
}

bool RootStore::trusts_key(KeyId key) const { return keys_.contains(key); }

std::string_view to_string(VerifyStatus status) noexcept {
  switch (status) {
    case VerifyStatus::kOk:
      return "ok";
    case VerifyStatus::kEmptyChain:
      return "empty_chain";
    case VerifyStatus::kExpired:
      return "expired";
    case VerifyStatus::kNotYetValid:
      return "not_yet_valid";
    case VerifyStatus::kHostnameMismatch:
      return "hostname_mismatch";
    case VerifyStatus::kSelfSigned:
      return "self_signed";
    case VerifyStatus::kBrokenChain:
      return "broken_chain";
    case VerifyStatus::kUntrustedRoot:
      return "untrusted_root";
    case VerifyStatus::kNotACa:
      return "not_a_ca";
  }
  return "unknown";
}

VerifyResult CertificateVerifier::verify(const CertificateChain& chain,
                                         std::string_view host,
                                         sim::Instant now) const {
  if (chain.empty()) {
    return VerifyResult{VerifyStatus::kEmptyChain, "no certificates presented"};
  }
  const Certificate& leaf = chain.front();

  // Validity windows for every certificate in the chain.
  for (const auto& certificate : chain) {
    if (now < certificate.not_before) {
      return VerifyResult{VerifyStatus::kNotYetValid,
                          certificate.subject.to_string() + " not yet valid"};
    }
    if (now > certificate.not_after) {
      return VerifyResult{VerifyStatus::kExpired,
                          certificate.subject.to_string() + " expired"};
    }
  }

  if (!host.empty() && !leaf.matches_host(host)) {
    return VerifyResult{VerifyStatus::kHostnameMismatch,
                        "leaf CN/SANs do not cover " + std::string(host)};
  }

  // Walk the chain: each certificate must be signed by the next one's key.
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const Certificate& child = chain[i];
    const Certificate& parent = chain[i + 1];
    if (!parent.is_ca) {
      return VerifyResult{VerifyStatus::kNotACa,
                          parent.subject.to_string() + " is not a CA"};
    }
    if (child.signed_by != parent.public_key || !(child.issuer == parent.subject)) {
      return VerifyResult{VerifyStatus::kBrokenChain,
                          "no signature linkage from " + child.subject.to_string() +
                              " to " + parent.subject.to_string()};
    }
  }

  const Certificate& last = chain.back();
  if (roots_->trusts(last)) {
    return VerifyResult{};
  }
  // A chain may omit the root itself: accept when the last certificate was
  // signed by a key belonging to a trusted root.
  if (!last.self_signed() && roots_->trusts_key(last.signed_by)) {
    return VerifyResult{};
  }
  if (chain.size() == 1 && leaf.self_signed()) {
    return VerifyResult{VerifyStatus::kSelfSigned, "self-signed leaf"};
  }
  return VerifyResult{VerifyStatus::kUntrustedRoot,
                      "chain anchors at untrusted " + last.subject.to_string()};
}

}  // namespace tft::tls
