// Structural validation of a built world: the invariants every probe
// depends on. Returns a list of human-readable problems (empty = valid).
// Used by tests and available to users assembling custom scenarios.
#pragma once

#include <string>
#include <vector>

#include "tft/world/world.hpp"

namespace tft::world {

std::vector<std::string> validate(const World& world);

}  // namespace tft::world
